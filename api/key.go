package api

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"mpss/internal/flow"
)

// RequestKey computes the canonical key of a solve request: a sha256
// over the endpoint kind, the solve parameters and the instance. It is
// the result-cache key inside each replica AND the consistent-hash
// routing key of the front tier — routing by it is what keeps each
// replica's LRU hot, because every repetition of an instance lands on
// the replica that already solved it. Jobs are hashed in the order
// given — the solver's output (though not its optimality) depends on
// input order, so two permutations of the same job set are distinct
// requests. Float fields are hashed by their IEEE-754 bits: the solver
// is bit-deterministic, so bit-equal inputs are exactly the requests
// with bit-equal responses.
//
// Defaultable knobs are normalized before hashing: alpha 0 means the
// server default 3, rel <= 0 means the solver's default tolerance, and
// the solve path resolves them to the same values — so the spelled-out
// and elided forms of one request share a cache entry and a flight.
//
// The decompose knob is deliberately EXCLUDED: decomposition produces a
// bit-identical schedule (the differential suite in internal/opt pins
// this), so a decomposed and a monolithic solve of the same instance
// are one logical request and must share a cache entry and a flight.
// (Only the telemetry "rounds" field of the body depends on the
// strategy; see OptimalResponse.)
func RequestKey(kind string, req *SolveRequest) string {
	alpha := req.Alpha
	if alpha == 0 {
		alpha = 3
	}
	rel := req.Rel
	if rel <= 0 {
		rel = flow.SolveTolerance
	}
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }

	h.Write([]byte(kind))
	h.Write([]byte{0})
	u64(uint64(req.M))
	f64(alpha)
	if req.Exact {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	f64(req.Cap)
	f64(rel)
	u64(uint64(len(req.Jobs)))
	for _, j := range req.Jobs {
		u64(uint64(j.ID))
		f64(j.Release)
		f64(j.Deadline)
		f64(j.Work)
	}
	return hex.EncodeToString(h.Sum(nil))
}
