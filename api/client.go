package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Client is a typed HTTP client for the mpss service API. It speaks to
// one base URL — a single mpss-served replica or an mpss-front cluster
// tier, which expose the same /v1/* surface — and gives every call
// request-ID plumbing, a default deadline, bounded response reading and
// the uniform error mapping (non-2xx bodies decode into *Error).
//
// The zero value is not usable; construct with NewClient. A Client is
// safe for concurrent use.
type Client struct {
	base string
	http *http.Client
	// timeout applies when the caller's context has no deadline.
	timeout time.Duration
	// newID mints request IDs for calls whose context carries none.
	newID func() string
	// maxBody bounds how much of a response body is read.
	maxBody int64
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (connection
// pool limits, transports, test doubles).
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) { c.http = h }
}

// WithClientTimeout sets the default per-call deadline applied when the
// caller's context has none (default 30s; 0 disables).
func WithClientTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithRequestIDs substitutes the request-ID generator (e.g. a sequence
// for deterministic tests).
func WithRequestIDs(f func() string) ClientOption {
	return func(c *Client) { c.newID = f }
}

// NewClient returns a client for the service at base, e.g.
// "http://127.0.0.1:8080".
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{
		base:    trimTrailingSlash(base),
		http:    &http.Client{},
		timeout: 30 * time.Second,
		newID:   NewRequestID,
		maxBody: 32 << 20,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Base returns the base URL the client targets.
func (c *Client) Base() string { return c.base }

func trimTrailingSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

// ctxKey is the private context-key namespace of this package.
type ctxKey int

const ctxKeyRequestID ctxKey = iota

// WithRequestID pins the X-Request-ID the client sends for calls made
// under this context (load generators stamp their own sequence IDs;
// proxies forward the inbound one).
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyRequestID, id)
}

// RequestIDFrom returns the request ID pinned by WithRequestID ("" if
// none).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// Result is the transport-level outcome of one call: the HTTP status,
// the echoed request ID, and the raw body. Typed helpers decode Body
// further; raw callers (load generators, proxies) consume it directly.
type Result struct {
	Status    int
	RequestID string
	Body      []byte
	Header    http.Header
}

// DoRaw issues one request with the client's plumbing — request ID
// (from WithRequestID or freshly minted), default deadline, JSON
// content type, bounded body read — and returns the transport-level
// result without interpreting the status. The error is non-nil only
// for transport failures (connection, deadline, oversized body).
func (c *Client) DoRaw(ctx context.Context, method, path string, body []byte) (*Result, error) {
	if _, ok := ctx.Deadline(); !ok && c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, fmt.Errorf("api: building request: %w", err)
	}
	id := RequestIDFrom(ctx)
	if id == "" {
		id = c.newID()
	}
	req.Header.Set(HeaderRequestID, id)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, c.maxBody))
	if err != nil {
		return nil, fmt.Errorf("api: reading response: %w", err)
	}
	echoed := resp.Header.Get(HeaderRequestID)
	if echoed == "" {
		echoed = id
	}
	return &Result{Status: resp.StatusCode, RequestID: echoed, Body: data, Header: resp.Header}, nil
}

// Do issues one JSON call: in (when non-nil) is marshaled as the body,
// a 2xx response body is unmarshaled into out (when non-nil), and a
// non-2xx response decodes into a returned *Error.
func (c *Client) Do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("api: encoding request: %w", err)
		}
	}
	res, err := c.DoRaw(ctx, method, path, body)
	if err != nil {
		return err
	}
	if res.Status < 200 || res.Status > 299 {
		return DecodeError(res.Status, res.RequestID, res.Body)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(res.Body, out); err != nil {
		return fmt.Errorf("api: decoding %s response: %w", path, err)
	}
	return nil
}

// DecodeError turns a non-2xx body into the typed *Error, falling back
// to the deprecated top-level fields and then to the bare status when
// the envelope is missing or malformed.
func DecodeError(status int, requestID string, body []byte) *Error {
	e := &Error{Status: status, Kind: "http_" + strconv.Itoa(status), Message: statusText(status), RequestID: requestID}
	var eb ErrorBody
	if json.Unmarshal(body, &eb) != nil {
		return e
	}
	switch {
	case eb.Error.Kind != "":
		e.Kind, e.Message = eb.Error.Kind, eb.Error.Message
		if eb.Error.RequestID != "" {
			e.RequestID = eb.Error.RequestID
		}
	case eb.Kind != "":
		// A pre-envelope server: top-level "kind" only.
		e.Kind = eb.Kind
		if eb.RequestID != "" {
			e.RequestID = eb.RequestID
		}
	}
	return e
}

// Solve posts req to /v1/solve/optimal.
func (c *Client) Solve(ctx context.Context, req *SolveRequest) (*OptimalResponse, error) {
	var out OptimalResponse
	if err := c.Do(ctx, http.MethodPost, "/v1/solve/optimal", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// OA posts req to /v1/solve/oa.
func (c *Client) OA(ctx context.Context, req *SolveRequest) (*OnlineResponse, error) {
	var out OnlineResponse
	if err := c.Do(ctx, http.MethodPost, "/v1/solve/oa", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AVR posts req to /v1/solve/avr.
func (c *Client) AVR(ctx context.Context, req *SolveRequest) (*OnlineResponse, error) {
	var out OnlineResponse
	if err := c.Do(ctx, http.MethodPost, "/v1/solve/avr", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AtCap posts req to /v1/solve/atcap.
func (c *Client) AtCap(ctx context.Context, req *SolveRequest) (*AtCapResponse, error) {
	var out AtCapResponse
	if err := c.Do(ctx, http.MethodPost, "/v1/solve/atcap", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Feasible posts req to /v1/feasible.
func (c *Client) Feasible(ctx context.Context, req *SolveRequest) (*FeasibleResponse, error) {
	var out FeasibleResponse
	if err := c.Do(ctx, http.MethodPost, "/v1/feasible", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MinCap posts req to /v1/mincap.
func (c *Client) MinCap(ctx context.Context, req *SolveRequest) (*MinCapResponse, error) {
	var out MinCapResponse
	if err := c.Do(ctx, http.MethodPost, "/v1/mincap", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SessionCreate opens a streaming session.
func (c *Client) SessionCreate(ctx context.Context, req *SolveRequest) (*SessionResponse, error) {
	var out SessionResponse
	if err := c.Do(ctx, http.MethodPost, "/v1/session", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SessionDelta applies one mutation batch to the session and returns
// the incremental resolve.
func (c *Client) SessionDelta(ctx context.Context, id string, req *SessionDeltaRequest) (*SessionResponse, error) {
	var out SessionResponse
	if err := c.Do(ctx, http.MethodPost, "/v1/session/"+url.PathEscape(id)+"/delta", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SessionPoll fetches the session's latest resolve. waitSeq >= 0
// long-polls until a resolve newer than waitSeq exists or timeoutMS
// passes (0 = server default).
func (c *Client) SessionPoll(ctx context.Context, id string, waitSeq int64, timeoutMS int64) (*SessionResponse, error) {
	path := "/v1/session/" + url.PathEscape(id)
	q := url.Values{}
	if waitSeq >= 0 {
		q.Set("wait_seq", strconv.FormatInt(waitSeq, 10))
	}
	if timeoutMS > 0 {
		q.Set("timeout_ms", strconv.FormatInt(timeoutMS, 10))
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out SessionResponse
	if err := c.Do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SessionDelete tears the session down.
func (c *Client) SessionDelete(ctx context.Context, id string) error {
	return c.Do(ctx, http.MethodDelete, "/v1/session/"+url.PathEscape(id), nil, nil)
}

// Healthz answers the liveness probe.
func (c *Client) Healthz(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.Do(ctx, http.MethodGet, "/v1/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Readyz answers the readiness probe. A draining or saturated server
// answers 503, surfaced as *Error with the decoded status in the body;
// use ReadyState when the state string matters more than the error.
func (c *Client) Readyz(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.Do(ctx, http.MethodGet, "/v1/readyz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ReadyState fetches /v1/readyz and reports the state string
// ("ready"/"draining"/"saturated") regardless of the HTTP status, with
// ready=true exactly for a 200.
func (c *Client) ReadyState(ctx context.Context) (state string, ready bool, err error) {
	res, err := c.DoRaw(ctx, http.MethodGet, "/v1/readyz", nil)
	if err != nil {
		return "", false, err
	}
	var h HealthResponse
	if err := json.Unmarshal(res.Body, &h); err != nil {
		return "", false, fmt.Errorf("api: decoding readyz: %w", err)
	}
	return h.Status, res.Status == http.StatusOK, nil
}

// ReplicaStatus fetches the replica introspection surface /v1/status.
func (c *Client) ReplicaStatus(ctx context.Context) (*ReplicaStatusResponse, error) {
	var out ReplicaStatusResponse
	if err := c.Do(ctx, http.MethodGet, "/v1/status", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ClusterStatus fetches the front tier's /v1/cluster/status.
func (c *Client) ClusterStatus(ctx context.Context) (*ClusterStatusResponse, error) {
	var out ClusterStatusResponse
	if err := c.Do(ctx, http.MethodGet, "/v1/cluster/status", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CachePeek asks the server whether its result cache holds the
// canonical request key (see RequestKey). On a hit it returns the
// cached response verbatim — Status is the originally cached status
// (200 or 422) and the HeaderCache header is "peek". On a miss it
// returns nil and found=false. Transport failures return an error.
func (c *Client) CachePeek(ctx context.Context, key string) (res *Result, found bool, err error) {
	r, err := c.DoRaw(ctx, http.MethodGet, "/v1/cache/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, false, err
	}
	if r.Header.Get(HeaderCache) != "peek" {
		return nil, false, nil
	}
	return r, true, nil
}
