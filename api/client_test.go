package api_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"mpss"
	"mpss/api"
	"mpss/internal/server"
)

func newTestServer(t *testing.T) *api.Client {
	t.Helper()
	srv := server.New(server.Config{Workers: 2})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown(context.Background())
	})
	return api.NewClient(ts.URL)
}

func testRequest() *api.SolveRequest {
	return &api.SolveRequest{
		M: 2,
		Jobs: []mpss.Job{
			{ID: 1, Release: 0, Deadline: 4, Work: 8},
			{ID: 2, Release: 1, Deadline: 5, Work: 3},
			{ID: 3, Release: 2, Deadline: 8, Work: 6},
		},
	}
}

func TestClientSolveRoundtrip(t *testing.T) {
	c := newTestServer(t)
	res, err := c.Solve(context.Background(), testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy <= 0 {
		t.Errorf("energy = %v, want > 0", res.Energy)
	}
	if res.Alpha != 3 {
		t.Errorf("alpha = %v, want default 3", res.Alpha)
	}
	if len(res.Phases) == 0 {
		t.Error("no phases in optimal response")
	}
}

func TestClientTypedError(t *testing.T) {
	c := newTestServer(t)
	req := testRequest()
	req.Cap = 0.001 // far below the minimum feasible speed
	_, err := c.AtCap(context.Background(), req)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("error type %T, want *api.Error", err)
	}
	if apiErr.Status != 422 || apiErr.Kind != "infeasible" {
		t.Errorf("got status %d kind %q, want 422 infeasible", apiErr.Status, apiErr.Kind)
	}
	if apiErr.RequestID == "" {
		t.Error("error carries no request ID")
	}
}

func TestClientRequestIDPinned(t *testing.T) {
	c := newTestServer(t)
	ctx := api.WithRequestID(context.Background(), "pinned-id-1")
	res, err := c.DoRaw(ctx, "GET", "/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestID != "pinned-id-1" {
		t.Errorf("echoed request ID %q, want pinned-id-1", res.RequestID)
	}
}

func TestClientMinCapAndFeasible(t *testing.T) {
	c := newTestServer(t)
	ctx := context.Background()
	mc, err := c.MinCap(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if mc.Cap <= 0 {
		t.Fatalf("min cap = %v, want > 0", mc.Cap)
	}
	req := testRequest()
	req.Cap = mc.Cap * 2
	fr, err := c.Feasible(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Feasible {
		t.Errorf("cap %v (2x min cap) reported infeasible", req.Cap)
	}
}

func TestClientSessionLifecycle(t *testing.T) {
	c := newTestServer(t)
	ctx := context.Background()
	sess, err := c.SessionCreate(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if sess.SessionID == "" {
		t.Fatal("empty session ID")
	}
	upd, err := c.SessionDelta(ctx, sess.SessionID, &api.SessionDeltaRequest{
		AddJobs: []mpss.Job{{ID: 9, Release: 0, Deadline: 10, Work: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if upd.Jobs != 4 {
		t.Errorf("jobs after delta = %d, want 4", upd.Jobs)
	}
	if err := c.SessionDelete(ctx, sess.SessionID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionPoll(ctx, sess.SessionID, 0, 0); err == nil {
		t.Error("poll after delete succeeded, want error")
	}
}

// The deprecated top-level mirrors must keep satisfying a pre-envelope
// client for one release: decode with only the old fields visible.
func TestErrorBodyBackCompat(t *testing.T) {
	body := api.NewErrorBody("infeasible", "no schedule", "req-1")
	if body.Kind != "infeasible" || body.RequestID != "req-1" {
		t.Errorf("deprecated mirrors not populated: %+v", body)
	}
	if body.Error.Kind != "infeasible" || body.Error.Message != "no schedule" || body.Error.RequestID != "req-1" {
		t.Errorf("nested envelope wrong: %+v", body.Error)
	}
}
