// Command mpss-gen generates reproducible random job instances as JSON
// for the other mpss tools.
//
// Usage:
//
//	mpss-gen -workload bursty -n 20 -m 4 -seed 7 > instance.json
//
// The trace subcommand emits a cluster-trace-shaped workload in the
// streaming mpss-trace-v1 JSONL format instead, writing jobs as they are
// generated — a 10M-job trace streams straight to disk without ever
// being held in memory:
//
//	mpss-gen trace -n 1000000 -m 8 -seed 1 -o trace.jsonl
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mpss"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		traceMain(os.Args[2:])
		return
	}
	var (
		name    = flag.String("workload", "uniform", "generator: "+strings.Join(mpss.Workloads(), ", "))
		n       = flag.Int("n", 12, "number of jobs")
		m       = flag.Int("m", 2, "number of processors")
		seed    = flag.Int64("seed", 1, "random seed")
		horizon = flag.Float64("horizon", 0, "time horizon (0 = generator default)")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	in, err := mpss.GenerateWorkload(*name, mpss.WorkloadSpec{
		N: *n, M: *m, Seed: *seed, Horizon: *horizon,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpss-gen:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(in, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpss-gen:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mpss-gen:", err)
		os.Exit(1)
	}
}

// traceMain streams a diurnal trace in the mpss-trace-v1 JSONL format.
func traceMain(args []string) {
	fs := flag.NewFlagSet("mpss-gen trace", flag.ExitOnError)
	var (
		n       = fs.Int("n", 10000, "number of jobs")
		m       = fs.Int("m", 8, "number of processors")
		seed    = fs.Int64("seed", 1, "random seed")
		horizon = fs.Float64("horizon", 0, "total trace horizon (0 = 100 time units per wave)")
		out     = fs.String("o", "", "output file (default stdout)")
	)
	fs.Parse(args)

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpss-gen:", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mpss-gen:", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	tw, err := mpss.NewTraceWriter(w, *m)
	if err == nil {
		err = mpss.GenerateTrace(tw, mpss.WorkloadSpec{N: *n, M: *m, Seed: *seed, Horizon: *horizon})
	}
	if err == nil {
		err = tw.Flush()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpss-gen:", err)
		os.Exit(1)
	}
}
