// Command mpss-gen generates reproducible random job instances as JSON
// for the other mpss tools.
//
// Usage:
//
//	mpss-gen -workload bursty -n 20 -m 4 -seed 7 > instance.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mpss"
)

func main() {
	var (
		name    = flag.String("workload", "uniform", "generator: "+strings.Join(mpss.Workloads(), ", "))
		n       = flag.Int("n", 12, "number of jobs")
		m       = flag.Int("m", 2, "number of processors")
		seed    = flag.Int64("seed", 1, "random seed")
		horizon = flag.Float64("horizon", 0, "time horizon (0 = generator default)")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	in, err := mpss.GenerateWorkload(*name, mpss.WorkloadSpec{
		N: *n, M: *m, Seed: *seed, Horizon: *horizon,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpss-gen:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(in, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpss-gen:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "mpss-gen:", err)
		os.Exit(1)
	}
}
