// Command mpss-loadgen is the open-loop load generator and SLO harness
// for mpss-served: it offers requests on a Poisson arrival process
// (arrivals do not wait for completions — the "heavy traffic from
// millions of users" model, where load is independent of service
// speed), mixes endpoints by configurable weights, splits traffic
// between a warm pool of repeated instances (cache-friendly) and
// unique instances (cache-busting), and reports latency percentiles,
// throughput and an error breakdown as a JSON SLO report.
//
// Usage:
//
//	mpss-loadgen -url http://127.0.0.1:8080 -duration 10s -rate 200 \
//	    -mix optimal=6,oa=2,feasible=1,mincap=1 -unique 0.5 \
//	    -slo-p99 250ms -slo-error-rate 0.01
//
// The SLO verdict gates the exit code: 0 when the run passed (p99 within
// target, error rate within budget, at least one completed request),
// 1 when the SLO failed, 2 on usage errors — so CI and autoscaler
// experiments can consume the verdict directly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mpss"
	"mpss/api"
	"mpss/internal/stats"
)

// endpointPaths maps mix names onto API paths.
var endpointPaths = map[string]string{
	"optimal":  "/v1/solve/optimal",
	"exact":    "/v1/solve/optimal",
	"oa":       "/v1/solve/oa",
	"avr":      "/v1/solve/avr",
	"atcap":    "/v1/solve/atcap",
	"feasible": "/v1/feasible",
	"mincap":   "/v1/mincap",
}

// outcome is one completed (or failed) request as the collector sees it.
type outcome struct {
	endpoint  string
	status    int // 0 = transport error
	seconds   float64
	errKind   string // error body kind, or transport error class
	requestID string
}

// LatencyReport summarizes one latency population in milliseconds.
type LatencyReport struct {
	Count  int     `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// SLOReport is the verdict block of the JSON report.
type SLOReport struct {
	P99TargetMS  float64 `json:"p99_target_ms"`
	P99MS        float64 `json:"p99_ms"`
	MaxErrorRate float64 `json:"max_error_rate"`
	ErrorRate    float64 `json:"error_rate"`
	Pass         bool    `json:"pass"`
	Reason       string  `json:"reason,omitempty"`
}

// Report is the full JSON document mpss-loadgen emits.
type Report struct {
	Config          map[string]any           `json:"config"`
	DurationSeconds float64                  `json:"duration_seconds"`
	Offered         int                      `json:"offered"`
	Completed       int                      `json:"completed"`
	ShedInflight    int                      `json:"shed_inflight"`
	ThroughputRPS   float64                  `json:"throughput_rps"`
	StatusCounts    map[string]int           `json:"status_counts"`
	ErrorKinds      map[string]int           `json:"error_kinds,omitempty"`
	Latency         LatencyReport            `json:"latency"`
	PerEndpoint     map[string]LatencyReport `json:"per_endpoint"`
	SLO             SLOReport                `json:"slo"`
}

func main() {
	var (
		baseURL     = flag.String("url", "http://127.0.0.1:8080", "base URL of mpss-served (or mpss-front)")
		targetsFlag = flag.String("targets", "", "comma-separated base URLs to spread load across (overrides -url; arrivals round-robin)")
		duration    = flag.Duration("duration", 10*time.Second, "offered-load window")
		rate        = flag.Float64("rate", 50, "mean arrival rate in req/s (Poisson process)")
		mix         = flag.String("mix", "optimal=6,oa=2,feasible=1,mincap=1", "endpoint weights name=w,... (optimal, exact, oa, avr, atcap, feasible, mincap)")
		unique      = flag.Float64("unique", 0.5, "fraction of arrivals solving a fresh unique instance (cache-busting); the rest replay a warm pool")
		warmPool    = flag.Int("warm-pool", 8, "distinct instances in the warm (cache-friendly) pool")
		jobs        = flag.Int("jobs", 16, "jobs per generated instance")
		m           = flag.Int("m", 3, "processors per generated instance")
		capFlag     = flag.Float64("cap", 100, "speed cap for feasible/atcap requests")
		workload    = flag.String("workload", "bursty", "workload generator family (see mpss.GenerateWorkload)")
		seed        = flag.Int64("seed", 1, "base RNG seed (arrivals, mix draws, instances)")
		reqTimeout  = flag.Duration("timeout", 5*time.Second, "per-request client timeout")
		maxInflight = flag.Int("max-inflight", 512, "open-loop safety valve: arrivals beyond this many in-flight requests are shed and counted")
		sloP99      = flag.Duration("slo-p99", 500*time.Millisecond, "SLO: p99 latency target")
		sloErrRate  = flag.Float64("slo-error-rate", 0.01, "SLO: max fraction of transport/5xx failures")
		outPath     = flag.String("o", "", "write the JSON report to this file (default stdout)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "mpss-loadgen: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	weights, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpss-loadgen:", err)
		os.Exit(2)
	}
	if *rate <= 0 || *duration <= 0 {
		fmt.Fprintln(os.Stderr, "mpss-loadgen: -rate and -duration must be positive")
		os.Exit(2)
	}

	// Pre-generate the request bodies: a warm pool replayed across the
	// run (cache hits exercise the LRU) and, lazily below, unique
	// instances that can never hit the cache.
	warm := make([][]byte, 0, *warmPool)
	for i := 0; i < *warmPool; i++ {
		body, err := requestBody(*workload, *jobs, *m, *seed+int64(i), *capFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpss-loadgen:", err)
			os.Exit(2)
		}
		warm = append(warm, body)
	}

	// All targets share one transport; each gets its own typed api.Client
	// (the same wire client the e2e suites and the cluster tier use).
	targets := []string{*baseURL}
	if *targetsFlag != "" {
		targets = targets[:0]
		for _, t := range strings.Split(*targetsFlag, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targets = append(targets, t)
			}
		}
		if len(targets) == 0 {
			fmt.Fprintln(os.Stderr, "mpss-loadgen: -targets has no URLs")
			os.Exit(2)
		}
	}
	httpc := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        *maxInflight,
			MaxIdleConnsPerHost: *maxInflight,
		},
	}
	clients := make([]*api.Client, len(targets))
	for i, t := range targets {
		clients[i] = api.NewClient(t, api.WithHTTPClient(httpc), api.WithClientTimeout(*reqTimeout))
	}

	rng := rand.New(rand.NewSource(*seed))
	outcomes := make(chan outcome, 4096)
	var collected []outcome
	collectDone := make(chan struct{})
	go func() {
		defer close(collectDone)
		for o := range outcomes {
			collected = append(collected, o)
		}
	}()

	var wg sync.WaitGroup
	var inflight sync.WaitGroup // counted separately so sheds are cheap
	var mu sync.Mutex
	offered, shed, uniqueSeq, active := 0, 0, int64(0), 0

	start := time.Now()
	for time.Since(start) < *duration {
		// Poisson arrivals: exponential inter-arrival gaps.
		gap := time.Duration(rng.ExpFloat64() / *rate * float64(time.Second))
		time.Sleep(gap)
		if time.Since(start) >= *duration {
			break
		}
		offered++
		mu.Lock()
		if active >= *maxInflight {
			shed++
			mu.Unlock()
			continue
		}
		active++
		mu.Unlock()

		name := pickEndpoint(weights, rng.Float64())
		var body []byte
		if rng.Float64() < *unique {
			uniqueSeq++
			b, err := requestBody(*workload, *jobs, *m, *seed+1_000_000+uniqueSeq, *capFlag)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mpss-loadgen:", err)
				os.Exit(2)
			}
			body = b
		} else {
			body = warm[rng.Intn(len(warm))]
		}
		reqID := fmt.Sprintf("loadgen-%d", offered)

		c := clients[offered%len(clients)] // round-robin across targets

		wg.Add(1)
		inflight.Add(1)
		go func(c *api.Client, name string, body []byte, reqID string) {
			defer wg.Done()
			defer inflight.Done()
			o := fire(c, name, body, reqID)
			mu.Lock()
			active--
			mu.Unlock()
			outcomes <- o
		}(c, name, body, reqID)
	}
	wg.Wait()
	close(outcomes)
	<-collectDone
	elapsed := time.Since(start)

	report := buildReport(collected, elapsed, offered, shed, map[string]any{
		"url": *baseURL, "targets": targets, "duration": duration.String(), "rate": *rate,
		"mix": *mix, "unique": *unique, "warm_pool": *warmPool,
		"jobs": *jobs, "m": *m, "workload": *workload, "seed": *seed,
	}, sloP99.Seconds()*1000, *sloErrRate)

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpss-loadgen:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mpss-loadgen:", err)
			os.Exit(1)
		}
	} else {
		os.Stdout.Write(enc)
	}
	if !report.SLO.Pass {
		fmt.Fprintln(os.Stderr, "mpss-loadgen: SLO FAIL:", report.SLO.Reason)
		os.Exit(1)
	}
}

// parseMix parses "name=weight,..." into a cumulative-weight table.
type weighted struct {
	name string
	cum  float64
}

func parseMix(mix string) ([]weighted, error) {
	var out []weighted
	total := 0.0
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wText, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix element %q (want name=weight)", part)
		}
		if _, known := endpointPaths[name]; !known {
			return nil, fmt.Errorf("unknown endpoint %q in mix", name)
		}
		w, err := strconv.ParseFloat(wText, 64)
		if err != nil || w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("bad weight in %q", part)
		}
		total += w
		out = append(out, weighted{name: name, cum: total})
	}
	if len(out) == 0 || total <= 0 {
		return nil, fmt.Errorf("empty endpoint mix %q", mix)
	}
	for i := range out {
		out[i].cum /= total
	}
	return out, nil
}

// pickEndpoint draws one endpoint from the cumulative table.
func pickEndpoint(weights []weighted, u float64) string {
	for _, w := range weights {
		if u <= w.cum {
			return w.name
		}
	}
	return weights[len(weights)-1].name
}

// requestBody renders one SolveRequest-shaped body from a generated
// workload instance.
func requestBody(workload string, jobs, m int, seed int64, cap float64) ([]byte, error) {
	in, err := mpss.GenerateWorkload(workload, mpss.WorkloadSpec{N: jobs, M: m, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("generate workload: %w", err)
	}
	return json.Marshal(map[string]any{
		"m":    in.M,
		"jobs": in.Jobs,
		"cap":  cap,
	})
}

// fire issues one request through the shared api.Client and classifies
// the outcome. The client pins the X-Request-ID we mint and applies the
// per-request timeout; api.DecodeError understands both the new nested
// error envelope and the deprecated top-level fields.
func fire(c *api.Client, name string, body []byte, reqID string) outcome {
	o := outcome{endpoint: name, requestID: reqID}
	path := endpointPaths[name]
	if name == "exact" {
		var withExact map[string]any
		json.Unmarshal(body, &withExact)
		withExact["exact"] = true
		body, _ = json.Marshal(withExact)
	}

	t0 := time.Now()
	res, err := c.DoRaw(api.WithRequestID(context.Background(), reqID), http.MethodPost, path, body)
	o.seconds = time.Since(t0).Seconds()
	if err != nil {
		o.errKind = classifyTransportError(err)
		return o
	}
	o.status = res.Status
	if res.Status >= 400 {
		o.errKind = api.DecodeError(res.Status, res.RequestID, res.Body).Kind
	}
	return o
}

func classifyTransportError(err error) string {
	msg := err.Error()
	switch {
	case strings.Contains(msg, "Client.Timeout"), strings.Contains(msg, "context deadline exceeded"):
		return "client_timeout"
	case strings.Contains(msg, "connection refused"):
		return "connection_refused"
	default:
		return "transport"
	}
}

// buildReport aggregates the outcomes into the JSON document.
func buildReport(outcomes []outcome, elapsed time.Duration, offered, shed int,
	config map[string]any, p99TargetMS, maxErrRate float64) Report {

	statusCounts := map[string]int{}
	errorKinds := map[string]int{}
	var all []float64
	perEndpoint := map[string][]float64{}
	failures := 0
	for _, o := range outcomes {
		if o.status == 0 {
			statusCounts["transport_error"]++
		} else {
			statusCounts[strconv.Itoa(o.status)]++
		}
		if o.errKind != "" {
			errorKinds[o.errKind]++
		}
		// SLO failures: the service (or path to it) broke — transport
		// errors and 5xx. 4xx are the client's own malformed/infeasible
		// requests and 422 in particular is a correct domain answer.
		if o.status == 0 || o.status >= 500 {
			failures++
		}
		all = append(all, o.seconds*1000)
		perEndpoint[o.endpoint] = append(perEndpoint[o.endpoint], o.seconds*1000)
	}

	r := Report{
		Config:          config,
		DurationSeconds: elapsed.Seconds(),
		Offered:         offered,
		Completed:       len(outcomes),
		ShedInflight:    shed,
		StatusCounts:    statusCounts,
		ErrorKinds:      errorKinds,
		PerEndpoint:     map[string]LatencyReport{},
	}
	if elapsed > 0 {
		r.ThroughputRPS = float64(len(outcomes)) / elapsed.Seconds()
	}
	r.Latency = summarizeLatency(all)
	for ep, lats := range perEndpoint {
		r.PerEndpoint[ep] = summarizeLatency(lats)
	}

	errRate := 0.0
	if len(outcomes) > 0 {
		errRate = float64(failures) / float64(len(outcomes))
	}
	slo := SLOReport{
		P99TargetMS:  p99TargetMS,
		P99MS:        r.Latency.P99MS,
		MaxErrorRate: maxErrRate,
		ErrorRate:    errRate,
		Pass:         true,
	}
	switch {
	case len(outcomes) == 0:
		slo.Pass = false
		slo.Reason = "no requests completed"
	case errRate > maxErrRate:
		slo.Pass = false
		slo.Reason = fmt.Sprintf("error rate %.4f exceeds budget %.4f", errRate, maxErrRate)
	case r.Latency.P99MS > p99TargetMS:
		slo.Pass = false
		slo.Reason = fmt.Sprintf("p99 %.1fms exceeds target %.1fms", r.Latency.P99MS, p99TargetMS)
	}
	r.SLO = slo
	return r
}

func summarizeLatency(ms []float64) LatencyReport {
	if len(ms) == 0 {
		return LatencyReport{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return LatencyReport{
		Count:  len(sorted),
		MeanMS: sum / float64(len(sorted)),
		P50MS:  stats.Percentile(sorted, 0.5),
		P90MS:  stats.Percentile(sorted, 0.9),
		P95MS:  stats.Percentile(sorted, 0.95),
		P99MS:  stats.Percentile(sorted, 0.99),
		MaxMS:  sorted[len(sorted)-1],
	}
}
