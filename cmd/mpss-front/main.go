// Command mpss-front runs the cluster front tier: one public /v1
// endpoint fanned out over mpss-served replicas (see internal/cluster
// and DESIGN.md §15). Solve requests route by consistent hash on the
// canonical request key, so repeats of an instance land on the replica
// whose LRU already holds the answer; dead replicas are detected and
// routed around; duplicate concurrent solves coalesce cluster-wide; and
// the autoscaler sizes the fleet by asking the solver itself how many
// replica-processors the observed demand needs.
//
// Two modes:
//
//	mpss-front -addr :8080 -min 2 -max 6 -served-bin ./bin/mpss-served
//	    spawns and owns mpss-served child processes, autoscaling
//	    between -min and -max;
//	mpss-front -addr :8080 -targets http://10.0.0.1:8081,http://10.0.0.2:8081
//	    fronts an existing fixed fleet (no spawning, no autoscaling).
//
// The daemon follows the mpss-served conventions: slog JSON records to
// stderr with a "listening" readiness line, SIGINT/SIGTERM graceful
// drain (child replicas get SIGTERM and finish in-flight solves), exit
// 0/1/2 for clean/runtime/usage.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"mpss/internal/cluster"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		targets       = flag.String("targets", "", "comma-separated base URLs of existing replicas (static mode: no spawning, no autoscaling)")
		servedBin     = flag.String("served-bin", "mpss-served", "mpss-served binary to spawn replicas from")
		servedFlags   = flag.String("served-flags", "", "extra flags passed to every spawned replica (space-separated)")
		minReplicas   = flag.Int("min", 1, "minimum replica count")
		maxReplicas   = flag.Int("max", 4, "maximum replica count")
		vnodes        = flag.Int("vnodes", 0, "consistent-hash virtual nodes per replica (0 = default 64)")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "replica health probe period")
		autoscale     = flag.Bool("autoscale", true, "enable the solver-driven autoscaler (ignored with -targets)")
		scaleInterval = flag.Duration("scale-interval", 2*time.Second, "autoscaler tick period and demand window")
		workersPer    = flag.Int("workers-per-replica", 0, "per-replica solve parallelism assumed by the autoscaler (0 = GOMAXPROCS of this process)")
		targetUtil    = flag.Float64("target-util", 0.7, "per-replica utilization the autoscaler plans for")
		scaleDown     = flag.Int("scale-down-after", 3, "consecutive low-demand windows before scaling down")
		logFormat     = flag.String("log-format", "json", "log encoding: json or text")
		logLevel      = flag.String("log-level", "info", "log level: debug, info, warn, error")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight work and replica drains on shutdown")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "mpss-front: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpss-front:", err)
		os.Exit(2)
	}

	cfg := cluster.Config{
		MinReplicas:   *minReplicas,
		MaxReplicas:   *maxReplicas,
		Vnodes:        *vnodes,
		ProbeInterval: *probeInterval,
		Logger:        logger,
	}
	if *targets != "" {
		urls := splitTargets(*targets)
		cfg.Spawner = &cluster.StaticSpawner{URLs: urls}
		cfg.MinReplicas = len(urls)
		cfg.MaxReplicas = len(urls)
	} else {
		cfg.Spawner = &cluster.ExecSpawner{
			Bin:    *servedBin,
			Args:   strings.Fields(*servedFlags),
			Logger: logger,
		}
		if *autoscale {
			cfg.Autoscale = cluster.AutoscaleConfig{
				Enabled:           true,
				Interval:          *scaleInterval,
				WorkersPerReplica: *workersPer,
				TargetUtil:        *targetUtil,
				ScaleDownAfter:    *scaleDown,
			}
			if cfg.Autoscale.WorkersPerReplica <= 0 {
				// Match what a spawned replica defaults its pool to.
				cfg.Autoscale.WorkersPerReplica = workerDefault(*servedFlags)
			}
		}
	}

	front, err := cluster.New(cfg)
	if err != nil {
		logger.Error("cluster start failed", "error", err.Error())
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "error", err.Error())
		os.Exit(2)
	}
	// The "listening" record is the readiness sentinel the cluster smoke
	// script waits for, same contract as mpss-served.
	logger.Info("listening",
		"addr", ln.Addr().String(),
		"min", cfg.MinReplicas,
		"max", cfg.MaxReplicas,
		"autoscale", cfg.Autoscale.Enabled,
	)

	httpSrv := &http.Server{Handler: front}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		logger.Error("serve failed", "error", err.Error())
		os.Exit(1)
	case s := <-sig:
		logger.Info("draining", "signal", s.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Error("http shutdown failed", "error", err.Error())
	}
	if err := front.Shutdown(ctx); err != nil {
		logger.Error("cluster shutdown", "error", err.Error())
		os.Exit(1)
	}
	logger.Info("drained")
}

// splitTargets parses the -targets list, trimming blanks.
func splitTargets(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, strings.TrimRight(t, "/"))
		}
	}
	return out
}

// workerDefault extracts -workers from the spawned replicas' flag list,
// falling back to this process's GOMAXPROCS (children inherit the same
// default when the flag is absent).
func workerDefault(servedFlags string) int {
	fields := strings.Fields(servedFlags)
	for i, f := range fields {
		if (f == "-workers" || f == "--workers") && i+1 < len(fields) {
			var n int
			if _, err := fmt.Sscanf(fields[i+1], "%d", &n); err == nil && n > 0 {
				return n
			}
		}
	}
	return runtime.GOMAXPROCS(0)
}

// buildLogger assembles the stderr slog logger from the CLI knobs.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q", format)
	}
}
