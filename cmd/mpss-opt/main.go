// Command mpss-opt computes an energy-optimal multi-processor schedule
// with migration (Theorem 1 of the paper) for a JSON instance.
//
// Usage:
//
//	mpss-gen -n 10 -m 3 | mpss-opt -alpha 3 -gantt
//	mpss-opt -in instance.json -exact -json schedule.json
//	mpss-opt -in instance.json -metrics metrics.json -trace
//	mpss-opt -in instance.json -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Streamed traces (the mpss-trace-v1 JSONL format of mpss-gen trace) are
// detected automatically and solved without materializing the trace:
// components are cut at zero-active boundaries as the reader advances
// and solved independently (decomposed by default; -decompose=false
// forces the materialized monolithic baseline). The streamed path prints
// a fixed-size summary instead of the schedule:
//
//	mpss-gen trace -n 1000000 -m 8 | mpss-opt -parallel 4 -summary-json summary.json
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"mpss"
)

func main() {
	var (
		inPath     = flag.String("in", "", "instance JSON or trace JSONL file (default stdin)")
		alpha      = flag.Float64("alpha", 3, "power function exponent (P(s) = s^alpha)")
		exact      = flag.Bool("exact", false, "use exact rational arithmetic for phase decisions")
		parallel   = flag.Int("parallel", 1, "flow-solver / component workers (<=1 sequential; ignored with -exact)")
		contract   = flag.Bool("contract", true, "merge equal-active-set interval runs before each phase solve (bit-identical results; off = A/B baseline)")
		decompose  = flag.Bool("decompose", false, "cut the instance at zero-active boundaries and solve components independently (bit-identical results; streamed traces default to true)")
		gantt      = flag.Bool("gantt", false, "print an ASCII Gantt chart")
		jsonOut    = flag.String("json", "", "write the schedule as JSON to this file")
		svgOut     = flag.String("svg", "", "write the schedule as an SVG figure to this file")
		metricsOut = flag.String("metrics", "", "write solver metrics (counters, histograms, phase spans) as JSON to this file")
		summaryOut = flag.String("summary-json", "", "write the streamed-solve summary (jobs/sec, peak RSS, components) as JSON to this file")
		trace      = flag.Bool("trace", false, "print the solver's phase trace tree")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile (runtime/pprof) to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (runtime/pprof) to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	p, err := mpss.NewAlpha(*alpha)
	if err != nil {
		fail(err)
	}
	var rec *mpss.Recorder
	if *metricsOut != "" || *trace {
		rec = mpss.NewRecorder()
	}

	input, closeInput, err := openInput(*inPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpss-opt:", err)
		os.Exit(2)
	}
	defer closeInput()

	// Sniff the first line: a trace header routes to the streaming
	// solve, anything else is read whole as instance JSON.
	head, _ := input.Peek(256)
	if mpss.IsTraceStream(head) {
		decomposeSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "decompose" {
				decomposeSet = true
			}
		})
		on := true // streamed traces decompose unless explicitly disabled
		if decomposeSet {
			on = *decompose
		}
		solveStream(input, p, *alpha, on, *parallel, *contract, rec,
			*summaryOut, *metricsOut, *trace)
		writeHeapProfile(*memProfile)
		return
	}

	in, err := readInstance(input)
	if err != nil {
		// Unreadable or unparseable input is a usage error.
		fmt.Fprintln(os.Stderr, "mpss-opt:", err)
		os.Exit(2)
	}

	solve := mpss.OptimalSchedule
	if *exact {
		solve = mpss.OptimalScheduleExact
	}
	res, err := solve(in, mpss.WithRecorder(rec), mpss.WithParallelism(*parallel),
		mpss.WithContraction(*contract), mpss.WithDecomposition(*decompose))
	if err != nil {
		fail(err)
	}
	if err := mpss.Verify(res.Schedule, in); err != nil {
		fail(fmt.Errorf("internal error — produced schedule failed verification: %w", err))
	}

	fmt.Printf("jobs: %d  processors: %d  phases: %d  flow-rounds: %d\n",
		in.N(), in.M, len(res.Phases), res.Stats.Rounds)
	for i, ph := range res.Phases {
		fmt.Printf("  phase %d: speed %.6g, jobs %v\n", i+1, ph.Speed, ph.JobIDs)
	}
	fmt.Printf("energy (P=s^%g): %.6g\n", *alpha, res.Schedule.Energy(p))
	if *gantt {
		fmt.Print(res.Schedule.Gantt(100))
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(res.Schedule, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
	}
	if *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			fail(err)
		}
		if err := mpss.RenderSVG(f, res.Schedule, mpss.SVGOptions{ShowLabels: true}); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if *trace {
		fmt.Print("phase trace:\n" + rec.TraceTree())
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fail(err)
		}
		if err := rec.WriteJSON(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	writeHeapProfile(*memProfile)
}

// solveStream runs the streaming trace solve and prints/records its
// fixed-size summary.
func solveStream(r io.Reader, p mpss.PowerFunction, alpha float64, decompose bool,
	parallel int, contract bool, rec *mpss.Recorder, summaryOut, metricsOut string, trace bool) {
	start := time.Now()
	sum, err := mpss.SolveTraceStream(r, p,
		mpss.WithDecomposition(decompose), mpss.WithParallelism(parallel),
		mpss.WithContraction(contract), mpss.WithRecorder(rec))
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)
	jobsPerSec := float64(sum.Jobs) / elapsed.Seconds()
	rss := peakRSSBytes()

	fmt.Printf("jobs: %d  processors: %d  components: %d  largest: %d  phases: %d  flow-rounds: %d\n",
		sum.Jobs, sum.M, sum.Components, sum.MaxComponentJobs, sum.Phases, sum.Rounds)
	fmt.Printf("energy (P=s^%g): %.6g\n", alpha, sum.Energy)
	fmt.Printf("elapsed: %.3fs  jobs/sec: %.0f  peak-rss: %d bytes  decompose: %v\n",
		elapsed.Seconds(), jobsPerSec, rss, decompose)

	if summaryOut != "" {
		out := struct {
			Jobs             int     `json:"jobs"`
			M                int     `json:"m"`
			Components       int     `json:"components"`
			MaxComponentJobs int     `json:"max_component_jobs"`
			Phases           int     `json:"phases"`
			Rounds           int     `json:"rounds"`
			Energy           float64 `json:"energy"`
			ElapsedSec       float64 `json:"elapsed_sec"`
			JobsPerSec       float64 `json:"jobs_per_sec"`
			PeakRSSBytes     int64   `json:"peak_rss_bytes"`
			Decompose        bool    `json:"decompose"`
		}{sum.Jobs, sum.M, sum.Components, sum.MaxComponentJobs, sum.Phases, sum.Rounds,
			sum.Energy, elapsed.Seconds(), jobsPerSec, rss, decompose}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(summaryOut, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
	}
	if trace {
		fmt.Print("phase trace:\n" + rec.TraceTree())
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			fail(err)
		}
		if err := rec.WriteJSON(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
}

// peakRSSBytes reads the process's peak resident set size (VmHWM) from
// /proc/self/status; 0 when unavailable (non-Linux).
func peakRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

func writeHeapProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
}

// openInput returns a buffered reader over the input path (or stdin)
// that supports sniffing via Peek.
func openInput(path string) (*bufio.Reader, func(), error) {
	if path == "" {
		return bufio.NewReaderSize(os.Stdin, 1<<16), func() {}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return bufio.NewReaderSize(f, 1<<16), func() { f.Close() }, nil
}

func readInstance(r io.Reader) (*mpss.Instance, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var in mpss.Instance
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("parsing instance: %w", err)
	}
	return &in, nil
}

// fail maps error classes onto the CLI exit-code convention: 2 for
// invalid input (usage errors), 1 for everything else (infeasible,
// numeric, internal).
func fail(err error) {
	fmt.Fprintln(os.Stderr, "mpss-opt:", err)
	if errors.Is(err, mpss.ErrInvalidInstance) {
		os.Exit(2)
	}
	os.Exit(1)
}
