// Command mpss-opt computes an energy-optimal multi-processor schedule
// with migration (Theorem 1 of the paper) for a JSON instance.
//
// Usage:
//
//	mpss-gen -n 10 -m 3 | mpss-opt -alpha 3 -gantt
//	mpss-opt -in instance.json -exact -json schedule.json
//	mpss-opt -in instance.json -metrics metrics.json -trace
//	mpss-opt -in instance.json -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"mpss"
)

func main() {
	var (
		inPath     = flag.String("in", "", "instance JSON file (default stdin)")
		alpha      = flag.Float64("alpha", 3, "power function exponent (P(s) = s^alpha)")
		exact      = flag.Bool("exact", false, "use exact rational arithmetic for phase decisions")
		parallel   = flag.Int("parallel", 1, "flow-solver workers for large cold solves (<=1 sequential; ignored with -exact)")
		contract   = flag.Bool("contract", true, "merge equal-active-set interval runs before each phase solve (bit-identical results; off = A/B baseline)")
		gantt      = flag.Bool("gantt", false, "print an ASCII Gantt chart")
		jsonOut    = flag.String("json", "", "write the schedule as JSON to this file")
		svgOut     = flag.String("svg", "", "write the schedule as an SVG figure to this file")
		metricsOut = flag.String("metrics", "", "write solver metrics (counters, histograms, phase spans) as JSON to this file")
		trace      = flag.Bool("trace", false, "print the solver's phase trace tree")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile (runtime/pprof) to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (runtime/pprof) to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	in, err := readInstance(*inPath)
	if err != nil {
		// Unreadable or unparseable input is a usage error.
		fmt.Fprintln(os.Stderr, "mpss-opt:", err)
		os.Exit(2)
	}
	p, err := mpss.NewAlpha(*alpha)
	if err != nil {
		fail(err)
	}

	var rec *mpss.Recorder
	if *metricsOut != "" || *trace {
		rec = mpss.NewRecorder()
	}
	solve := mpss.OptimalSchedule
	if *exact {
		solve = mpss.OptimalScheduleExact
	}
	res, err := solve(in, mpss.WithRecorder(rec), mpss.WithParallelism(*parallel),
		mpss.WithContraction(*contract))
	if err != nil {
		fail(err)
	}
	if err := mpss.Verify(res.Schedule, in); err != nil {
		fail(fmt.Errorf("internal error — produced schedule failed verification: %w", err))
	}

	fmt.Printf("jobs: %d  processors: %d  phases: %d  flow-rounds: %d\n",
		in.N(), in.M, len(res.Phases), res.Stats.Rounds)
	for i, ph := range res.Phases {
		fmt.Printf("  phase %d: speed %.6g, jobs %v\n", i+1, ph.Speed, ph.JobIDs)
	}
	fmt.Printf("energy (P=s^%g): %.6g\n", *alpha, res.Schedule.Energy(p))
	if *gantt {
		fmt.Print(res.Schedule.Gantt(100))
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(res.Schedule, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
	}
	if *svgOut != "" {
		f, err := os.Create(*svgOut)
		if err != nil {
			fail(err)
		}
		if err := mpss.RenderSVG(f, res.Schedule, mpss.SVGOptions{ShowLabels: true}); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if *trace {
		fmt.Print("phase trace:\n" + rec.TraceTree())
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fail(err)
		}
		if err := rec.WriteJSON(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fail(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
}

func readInstance(path string) (*mpss.Instance, error) {
	var data []byte
	var err error
	if path == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var in mpss.Instance
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("parsing instance: %w", err)
	}
	return &in, nil
}

// fail maps error classes onto the CLI exit-code convention: 2 for
// invalid input (usage errors), 1 for everything else (infeasible,
// numeric, internal).
func fail(err error) {
	fmt.Fprintln(os.Stderr, "mpss-opt:", err)
	if errors.Is(err, mpss.ErrInvalidInstance) {
		os.Exit(2)
	}
	os.Exit(1)
}
