// Command mpss-served runs the scheduling service: a long-lived HTTP
// daemon exposing the paper's offline optimum, the OA/AVR online
// simulations, the speed-bounded feasibility queries and streaming
// sessions (warm incremental re-solves over /v1/session) as a JSON API
// (see internal/server for the endpoint list and DESIGN.md §10–§13 for
// the architecture and the telemetry layer).
//
// Usage:
//
//	mpss-served -addr :8080 -workers 4 -queue 128 -timeout 30s
//	curl -s localhost:8080/v1/solve/optimal -d '{"m":2,"jobs":[{"id":1,"release":0,"deadline":4,"work":8}]}'
//	curl -s localhost:8080/v1/metrics       # JSON snapshot
//	curl -s localhost:8080/metrics          # Prometheus exposition
//	curl -s localhost:8080/v1/debug/traces  # flight recorder
//
// The daemon logs structured records (slog; JSON by default) to stderr:
// one "listening" record at startup — the readiness sentinel
// scripts/serve_smoke.sh waits for — one access-log record per request,
// and "draining"/"drained" records around shutdown. -debug-addr starts
// a second listener with net/http/pprof and the flight recorder, meant
// to stay private.
//
// SIGINT/SIGTERM triggers a graceful drain: the listener stops
// accepting, in-flight solves run to completion (bounded by
// -drain-timeout), then the process exits 0. Exit codes follow the
// repository convention: 0 clean shutdown, 1 runtime failure, 2 usage
// error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mpss/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "solver worker pool size (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "admission queue depth (0 = default 64)")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request solve deadline")
		cache        = flag.Int("cache", 0, "result cache entries (0 = default 1024, negative disables)")
		trace        = flag.Bool("trace", false, "record a span per request (bounded by the trace span limit)")
		flight       = flag.Int("flight", 0, "flight recorder size: retain N most recent + N slowest request traces (0 = default 64, negative disables)")
		sessionTTL   = flag.Duration("session-ttl", 10*time.Minute, "evict streaming sessions idle longer than this (negative disables)")
		maxSessions  = flag.Int("max-sessions", 0, "max concurrently open streaming sessions (0 = default 256)")
		sessionJobs  = flag.Int("session-max-jobs", 0, "max jobs per streaming session (0 = default 100000)")
		decompose    = flag.Bool("decompose", false, "decompose separable instances in /v1/solve/optimal (bit-identical results; per-request \"decompose\" overrides)")
		replica      = flag.String("replica", "", "replica name reported in /v1/status and cluster views (empty = standalone)")
		debugAddr    = flag.String("debug-addr", "", "optional second listen address for pprof + debug endpoints (empty = disabled)")
		logFormat    = flag.String("log-format", "json", "log encoding: json or text")
		logLevel     = flag.String("log-level", "info", "log level: debug, info, warn, error")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight solves on shutdown")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "mpss-served: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpss-served:", err)
		os.Exit(2)
	}

	srv := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		CacheEntries:   *cache,
		TraceRequests:  *trace,
		FlightEntries:  *flight,
		SessionTTL:     *sessionTTL,
		MaxSessions:    *maxSessions,
		SessionMaxJobs: *sessionJobs,
		Decompose:      *decompose,
		ReplicaName:    *replica,
		Logger:         logger,
	})
	cfg := srv.Config() // resolved defaults, for honest startup logging
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "error", err.Error())
		os.Exit(2)
	}
	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			logger.Error("debug listen failed", "addr", *debugAddr, "error", err.Error())
			os.Exit(2)
		}
		debugSrv = &http.Server{Handler: srv.DebugHandler()}
		go debugSrv.Serve(dln)
		logger.Info("debug listening", "addr", dln.Addr().String())
	}
	// The "listening" record is the readiness signal scripts wait for
	// (scripts/serve_smoke.sh and loadgen_smoke.sh extract the address
	// from its "addr" attribute before issuing requests).
	logger.Info("listening",
		"addr", ln.Addr().String(),
		"workers", cfg.Workers,
		"queue", cfg.QueueDepth,
		"cache", cfg.CacheEntries,
		"timeout", cfg.DefaultTimeout.String(),
		"flight", cfg.FlightEntries,
		"session_ttl", cfg.SessionTTL.String(),
		"max_sessions", cfg.MaxSessions,
	)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-serveErr:
		logger.Error("serve failed", "error", err.Error())
		os.Exit(1)
	case s := <-sig:
		logger.Info("draining", "signal", s.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop the listener and wait for active handlers first, then drain
	// the worker pool (handlers block on their workers, so by the time
	// http shutdown returns, the queue is quiescing).
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("http shutdown failed", "error", err.Error())
		os.Exit(1)
	}
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("drain failed", "error", err.Error())
		os.Exit(1)
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	logger.Info("drained")
}

// buildLogger assembles the stderr slog logger from the CLI knobs.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q", format)
	}
}
