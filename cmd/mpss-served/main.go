// Command mpss-served runs the scheduling service: a long-lived HTTP
// daemon exposing the paper's offline optimum, the OA/AVR online
// simulations and the speed-bounded feasibility queries as a JSON API
// (see internal/server for the endpoint list and DESIGN.md §10 for the
// architecture).
//
// Usage:
//
//	mpss-served -addr :8080 -workers 4 -queue 128 -timeout 30s
//	curl -s localhost:8080/v1/solve/optimal -d '{"m":2,"jobs":[{"id":1,"release":0,"deadline":4,"work":8}]}'
//	curl -s localhost:8080/v1/metrics
//
// SIGINT/SIGTERM triggers a graceful drain: the listener stops
// accepting, in-flight solves run to completion (bounded by
// -drain-timeout), then the process exits 0. Exit codes follow the
// repository convention: 0 clean shutdown, 1 runtime failure, 2 usage
// error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mpss/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "solver worker pool size (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "admission queue depth (0 = default 64)")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request solve deadline")
		cache        = flag.Int("cache", 0, "result cache entries (0 = default 1024, negative disables)")
		trace        = flag.Bool("trace", false, "record a span per request (bounded by the trace span limit)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight solves on shutdown")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "mpss-served: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	srv := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		CacheEntries:   *cache,
		TraceRequests:  *trace,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpss-served:", err)
		os.Exit(2)
	}
	// The "listening" line is the readiness signal scripts wait for
	// (scripts/serve_smoke.sh greps it before issuing requests).
	fmt.Fprintf(os.Stderr, "mpss-served: listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "mpss-served:", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "mpss-served: %v, draining\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop the listener and wait for active handlers first, then drain
	// the worker pool (handlers block on their workers, so by the time
	// http shutdown returns, the queue is quiescing).
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "mpss-served: http shutdown:", err)
		os.Exit(1)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mpss-served: drain:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "mpss-served: drained, bye")
}
