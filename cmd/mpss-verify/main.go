// Command mpss-verify checks a schedule JSON against an instance JSON:
// feasibility (windows, volumes, no processor or job overlap), energy
// under a chosen power function, and optionally optimality against the
// built-in offline optimum.
//
// Usage:
//
//	mpss-opt -in inst.json -json sched.json
//	mpss-verify -instance inst.json -schedule sched.json -alpha 3 -optimal
//
// Exit codes: 0 = feasible, 1 = infeasible or solver failure, 2 = usage
// or invalid input.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"mpss"
)

func main() {
	var (
		instPath  = flag.String("instance", "", "instance JSON file (required)")
		schedPath = flag.String("schedule", "", "schedule JSON file (required)")
		alpha     = flag.Float64("alpha", 3, "power function exponent for energy reporting")
		optimal   = flag.Bool("optimal", false, "also compare against the offline optimum")
		cap       = flag.Float64("cap", 0, "also check the instance is feasible under this speed cap (0 = skip)")
	)
	flag.Parse()
	if *instPath == "" || *schedPath == "" {
		fmt.Fprintln(os.Stderr, "mpss-verify: -instance and -schedule are required")
		os.Exit(2)
	}

	in := readJSON[mpss.Instance](*instPath)
	sched := readJSON[mpss.Schedule](*schedPath)

	if err := mpss.Verify(sched, in); err != nil {
		if errors.Is(err, mpss.ErrInvalidInstance) {
			fmt.Fprintln(os.Stderr, "mpss-verify:", err)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "INFEASIBLE:", err)
		os.Exit(1)
	}
	p, err := mpss.NewAlpha(*alpha)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpss-verify:", err)
		os.Exit(2)
	}
	e := sched.Energy(p)
	fmt.Printf("feasible: yes\nenergy (P=s^%g): %.6g\n", *alpha, e)

	m := sched.ComputeMetrics()
	fmt.Printf("segments: %d  migrations: %d  preemptions: %d  utilization: %.3f\n",
		m.Segments, m.Migrations, m.Preemptions, m.Utilization)

	if *cap != 0 {
		ok, err := mpss.FeasibleAtSpeed(in, *cap)
		if err != nil {
			if errors.Is(err, mpss.ErrInvalidInstance) {
				fmt.Fprintln(os.Stderr, "mpss-verify:", err)
				os.Exit(2)
			}
			fmt.Fprintln(os.Stderr, "mpss-verify:", err)
			os.Exit(1)
		}
		fmt.Printf("feasible at cap %g: %v\n", *cap, ok)
		if !ok {
			os.Exit(1)
		}
	}

	if *optimal {
		res, err := mpss.OptimalSchedule(in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpss-verify:", err)
			os.Exit(1)
		}
		optE := res.Schedule.Energy(p)
		if optE > 0 {
			fmt.Printf("offline optimum: %.6g  ratio: %.6f\n", optE, e/optE)
		} else {
			// A zero-energy optimum makes the ratio meaningless (0/0 or
			// +Inf); report the energies and let the caller judge.
			fmt.Printf("offline optimum: %.6g  ratio: n/a (optimum energy is zero)\n", optE)
		}
	}
}

func readJSON[T any](path string) *T {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpss-verify:", err)
		os.Exit(2)
	}
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		fmt.Fprintf(os.Stderr, "mpss-verify: parsing %s: %v\n", path, err)
		os.Exit(2)
	}
	return &v
}
