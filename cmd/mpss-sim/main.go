// Command mpss-sim runs an online speed-scaling algorithm on a JSON
// instance and reports its energy and measured competitive ratio against
// the offline optimum.
//
// Usage:
//
//	mpss-gen -n 16 -m 4 -workload bursty | mpss-sim -alg oa -alpha 2
//	mpss-sim -in instance.json -alg avr -gantt
//	mpss-sim -in instance.json -alg oa -trace -metrics metrics.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"mpss"
)

func main() {
	var (
		inPath     = flag.String("in", "", "instance JSON file (default stdin)")
		alg        = flag.String("alg", "oa", "algorithm: oa, avr, bkp (m=1), nonmig-random, nonmig-rr, nonmig-lw")
		alpha      = flag.Float64("alpha", 2, "power function exponent")
		seed       = flag.Int64("seed", 1, "seed for nonmig-random")
		gantt      = flag.Bool("gantt", false, "print an ASCII Gantt chart")
		metricsOut = flag.String("metrics", "", "write simulator metrics (per-event counters, spans) as JSON to this file")
		trace      = flag.Bool("trace", false, "print the per-event trace tree (OA/AVR)")
	)
	flag.Parse()

	in, err := readInstance(*inPath)
	if err != nil {
		// Unreadable or unparseable input is a usage error.
		fmt.Fprintln(os.Stderr, "mpss-sim:", err)
		os.Exit(2)
	}
	p, err := mpss.NewAlpha(*alpha)
	if err != nil {
		fail(err)
	}

	// The recorder is always on: the per-algorithm summary line below is
	// sourced from its counters.
	rec := mpss.NewRecorder()

	var sched *mpss.Schedule
	var bound float64
	switch *alg {
	case "oa":
		res, err := mpss.OA(in, mpss.WithRecorder(rec))
		if err != nil {
			fail(err)
		}
		sched = res.Schedule
		bound = mpss.OABound(*alpha)
		fmt.Printf("OA(m): %d replanning events\n", res.Replans)
	case "avr":
		res, err := mpss.AVR(in, mpss.WithRecorder(rec))
		if err != nil {
			fail(err)
		}
		sched = res.Schedule
		bound = mpss.AVRBound(*alpha)
		fmt.Printf("AVR(m): %d scheduling intervals\n", len(res.Levels))
	case "nonmig-random":
		sched, err = mpss.NonMigratory(in, mpss.RandomAssignment(*seed))
	case "nonmig-rr":
		sched, err = mpss.NonMigratory(in, mpss.RoundRobinAssignment())
	case "nonmig-lw":
		sched, err = mpss.NonMigratory(in, mpss.LeastWorkAssignment())
	case "bkp":
		if in.M != 1 {
			fail(fmt.Errorf("bkp is a single-processor algorithm; instance has m=%d", in.M))
		}
		sched, err = mpss.BKP(in.Jobs, 24)
		bound = mpss.BKPBound(*alpha)
	default:
		fail(fmt.Errorf("unknown algorithm %q", *alg))
	}
	if err != nil {
		fail(err)
	}
	if err := mpss.Verify(sched, in); err != nil {
		fail(fmt.Errorf("produced schedule failed verification: %w", err))
	}

	printSummary(*alg, rec, sched)

	opt, err := mpss.OptimalSchedule(in)
	if err != nil {
		fail(err)
	}
	algE := sched.Energy(p)
	optE := opt.Schedule.Energy(p)
	fmt.Printf("energy:  %s = %.6g, offline optimum = %.6g\n", *alg, algE, optE)
	fmt.Printf("ratio:   %.4f", algE/optE)
	if bound > 0 {
		fmt.Printf("  (proven bound %.4f)", bound)
	}
	fmt.Println()
	if *gantt {
		fmt.Print(sched.Gantt(100))
	}
	if *trace {
		fmt.Print("event trace:\n" + rec.TraceTree())
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fail(err)
		}
		if err := rec.WriteJSON(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
}

// printSummary prints the one-line per-algorithm account sourced from
// the recorder counters: events processed, migrations issued, and the
// highest speed the schedule employs.
func printSummary(alg string, rec *mpss.Recorder, sched *mpss.Schedule) {
	m := sched.ComputeMetrics()
	var events, migrations int64
	switch alg {
	case "oa":
		events = rec.Value("oa.arrivals")
		migrations = rec.Value("oa.migrations")
	case "avr":
		events = rec.Value("avr.intervals")
		migrations = rec.Value("avr.migrations")
	default:
		// Non-migratory baselines and BKP run uninstrumented; count from
		// the schedule itself (migrations are zero by construction for
		// the non-migratory policies).
		events = int64(m.Segments)
		migrations = int64(m.Migrations)
	}
	fmt.Printf("summary: %s events=%d migrations=%d max-speed=%.6g\n",
		alg, events, migrations, m.MaxSpeed)
}

func readInstance(path string) (*mpss.Instance, error) {
	var data []byte
	var err error
	if path == "" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var in mpss.Instance
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("parsing instance: %w", err)
	}
	return &in, nil
}

// fail maps error classes onto the CLI exit-code convention: 2 for
// invalid input (usage errors), 1 for everything else (infeasible,
// numeric, internal).
func fail(err error) {
	fmt.Fprintln(os.Stderr, "mpss-sim:", err)
	if errors.Is(err, mpss.ErrInvalidInstance) {
		os.Exit(2)
	}
	os.Exit(1)
}
