// Command mpss-bench regenerates the experiment tables of EXPERIMENTS.md:
// one experiment per theorem/lemma of the paper plus the baseline
// comparisons. See DESIGN.md section 4 for the experiment index.
//
// Usage:
//
//	mpss-bench                     # all experiments, default scale
//	mpss-bench -experiment e3      # only the OA(m) competitive sweep
//	mpss-bench -seeds 10 -n 16     # larger sample
//	mpss-bench -metrics bench_metrics.json   # solver-internal counters
//	mpss-bench -cpuprofile cpu.pprof         # profile the hot paths
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"mpss/internal/bench"
	"mpss/internal/export"
	"mpss/internal/obs"
)

func main() {
	var (
		exp        = flag.String("experiment", "all", "which experiment to run: all, e1..e14")
		seeds      = flag.Int("seeds", 0, "seeds per cell (0 = default)")
		n          = flag.Int("n", 0, "jobs per instance (0 = default)")
		csvDir     = flag.String("csv", "", "also write each experiment's rows as CSV into this directory")
		metricsOut = flag.String("metrics", "", "collect per-experiment solver metrics; print summaries and write them as JSON to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile (runtime/pprof) to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (runtime/pprof) to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}

	cfg := bench.Defaults()
	if *seeds > 0 {
		cfg.Seeds = *seeds
	}
	if *n > 0 {
		cfg.N = *n
	}

	if *csvDir != "" {
		check(os.MkdirAll(*csvDir, 0o755))
	}
	writeCSV := func(name string, rows interface{}) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		check(err)
		defer f.Close()
		check(export.CSV(f, rows))
	}

	type experiment struct {
		name string
		run  func(cfg bench.Config) error
	}
	experiments := []experiment{
		{"e1", func(cfg bench.Config) error {
			rows, err := bench.E1(cfg)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderE1(rows))
			writeCSV("e1", rows)
			return bench.E1Check(rows)
		}},
		{"e2", func(cfg bench.Config) error {
			rows, err := bench.E2(cfg, []int{8, 16, 32, 64})
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderE2(rows))
			writeCSV("e2", rows)
			return nil
		}},
		{"e3", func(cfg bench.Config) error {
			rows, err := bench.E3(cfg)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderRatios("E3 — Theorem 2: OA(m) measured ratio vs alpha^alpha", rows))
			writeCSV("e3", rows)
			return bench.RatioCheck(rows)
		}},
		{"e4", func(cfg bench.Config) error {
			rows, err := bench.E4(cfg)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderRatios("E4 — Theorem 3: AVR(m) measured ratio vs (2a)^a/2+1", rows))
			writeCSV("e4", rows)
			return bench.RatioCheck(rows)
		}},
		{"e5", func(cfg bench.Config) error {
			rows, err := bench.E5(cfg)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderE5(rows))
			writeCSV("e5", rows)
			return bench.E5Check(rows)
		}},
		{"e6", func(cfg bench.Config) error {
			rows, err := bench.E6(cfg)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderE6(rows))
			writeCSV("e6", rows)
			return bench.E6Check(rows)
		}},
		{"e7", func(cfg bench.Config) error {
			rows, err := bench.E7(cfg)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderE7(rows))
			writeCSV("e7", rows)
			return bench.E7Check(rows)
		}},
		{"e8", func(cfg bench.Config) error {
			rows, err := bench.E8(cfg)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderE8(rows))
			writeCSV("e8", rows)
			return bench.E8Check(rows)
		}},
		{"e9", func(cfg bench.Config) error {
			rows, err := bench.E9(cfg, []int{4, 8, 16, 32})
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderE9(rows))
			writeCSV("e9", rows)
			return bench.E9Check(rows)
		}},
		{"e10", func(cfg bench.Config) error {
			rows, err := bench.E10(cfg)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderE10(rows))
			writeCSV("e10", rows)
			return bench.E10Check(rows)
		}},
		{"e11", func(cfg bench.Config) error {
			rows, err := bench.E11(cfg, []int{16, 32, 64, 128})
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderE11(rows))
			writeCSV("e11", rows)
			return bench.E11Check(rows)
		}},
		{"e12", func(cfg bench.Config) error {
			rows, err := bench.E12(cfg)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderE12(rows))
			writeCSV("e12", rows)
			return bench.E12Check(rows)
		}},
		{"e13", func(cfg bench.Config) error {
			rows, err := bench.E13(cfg)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderE13(rows))
			writeCSV("e13", rows)
			return bench.E13Check(rows)
		}},
		{"e14", func(cfg bench.Config) error {
			rows, err := bench.E14(cfg)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderE14(rows))
			writeCSV("e14", rows)
			return bench.E14Check(rows)
		}},
	}

	collect := *metricsOut != ""
	snaps := make(map[string]obs.Snapshot)
	var order []string

	want := strings.ToLower(*exp)
	ran := false
	for _, e := range experiments {
		if want != "all" && want != e.name {
			continue
		}
		ran = true
		run := cfg
		if collect {
			run.Recorder = obs.New()
		}
		check(e.run(run))
		if collect {
			snap := run.Recorder.Snapshot()
			// Traces from thousands of solver runs would dominate the
			// file; the counters and histograms are the per-experiment
			// payload. Use mpss-opt/mpss-sim -trace for span trees.
			snap.Trace = nil
			snaps[e.name] = snap
			order = append(order, e.name)
			if len(snap.Counters) > 0 {
				fmt.Printf("metrics [%s]:\n%s\n", e.name, snap.CounterTable())
			}
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "mpss-bench: unknown experiment %q (want all or e1..e14)\n", *exp)
		os.Exit(2)
	}

	if collect {
		total := obs.Snapshot{}
		for _, name := range order {
			total = total.Merge(snaps[name])
		}
		if len(total.Counters) > 0 {
			fmt.Printf("metrics [total]:\n%s\n", total.CounterTable())
		}
		payload := struct {
			Experiments map[string]obs.Snapshot `json:"experiments"`
			Total       obs.Snapshot            `json:"total"`
		}{Experiments: snaps, Total: total}
		data, err := json.MarshalIndent(payload, "", "  ")
		check(err)
		check(os.WriteFile(*metricsOut, append(data, '\n'), 0o644))
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		check(err)
		runtime.GC()
		check(pprof.WriteHeapProfile(f))
		check(f.Close())
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpss-bench:", err)
		os.Exit(1)
	}
}
