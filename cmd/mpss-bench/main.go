// Command mpss-bench regenerates the experiment tables of EXPERIMENTS.md:
// one experiment per theorem/lemma of the paper plus the baseline
// comparisons. See DESIGN.md section 4 for the experiment index.
//
// Experiments are independent, so they are fanned out over a worker pool
// (-workers, default GOMAXPROCS). Each experiment renders into its own
// buffer and records into its own obs.Recorder; outputs are printed in
// the fixed e1..e14 order and recorders are merged afterwards, so the
// output and metrics are byte-identical to a sequential run.
//
// Usage:
//
//	mpss-bench                     # all experiments, default scale
//	mpss-bench -experiment e3      # only the OA(m) competitive sweep
//	mpss-bench -seeds 10 -n 16     # larger sample
//	mpss-bench -workers 1          # sequential (e.g. when profiling)
//	mpss-bench -metrics bench_metrics.json   # solver-internal counters
//	mpss-bench -cpuprofile cpu.pprof         # profile the hot paths
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"mpss/internal/bench"
	"mpss/internal/export"
	"mpss/internal/obs"
	"mpss/internal/pool"
)

func main() {
	var (
		exp        = flag.String("experiment", "all", "which experiment to run: all, e1..e14")
		seeds      = flag.Int("seeds", 0, "seeds per cell (0 = default)")
		n          = flag.Int("n", 0, "jobs per instance (0 = default)")
		workers    = flag.Int("workers", 0, "experiments run concurrently (0 = GOMAXPROCS, 1 = sequential)")
		parallel   = flag.Int("parallel", 1, "flow-solver workers inside each solve (<=1 sequential)")
		contract   = flag.Bool("contract", true, "interval contraction in the offline solves (off = raw-graph A/B baseline)")
		approx     = flag.Bool("approx", true, "approximate first tier for cap searches (off = raw probes only)")
		decompose  = flag.Bool("decompose", false, "zero-active-boundary decomposition in the offline solves (bit-identical results)")
		csvDir     = flag.String("csv", "", "also write each experiment's rows as CSV into this directory")
		metricsOut = flag.String("metrics", "", "collect per-experiment solver metrics; print summaries and write them as JSON to this file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile (runtime/pprof) to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (runtime/pprof) to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}

	cfg := bench.Defaults()
	if *seeds > 0 {
		cfg.Seeds = *seeds
	}
	if *n > 0 {
		cfg.N = *n
	}
	cfg.Parallelism = *parallel
	cfg.NoContraction = !*contract
	cfg.NoApprox = !*approx
	cfg.Decompose = *decompose

	if *csvDir != "" {
		check(os.MkdirAll(*csvDir, 0o755))
	}
	writeCSV := func(name string, rows interface{}) error {
		if *csvDir == "" {
			return nil
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		return export.CSV(f, rows)
	}

	// Each run renders its table(s) into the returned string instead of
	// printing, so experiments can execute concurrently and still be
	// emitted in the canonical order.
	type experiment struct {
		name string
		run  func(cfg bench.Config) (string, error)
	}
	experiments := []experiment{
		{"e1", func(cfg bench.Config) (string, error) {
			rows, err := bench.E1(cfg)
			if err != nil {
				return "", err
			}
			if err := writeCSV("e1", rows); err != nil {
				return "", err
			}
			return bench.RenderE1(rows), bench.E1Check(rows)
		}},
		{"e2", func(cfg bench.Config) (string, error) {
			rows, err := bench.E2(cfg, []int{8, 16, 32, 64})
			if err != nil {
				return "", err
			}
			return bench.RenderE2(rows), writeCSV("e2", rows)
		}},
		{"e3", func(cfg bench.Config) (string, error) {
			rows, err := bench.E3(cfg)
			if err != nil {
				return "", err
			}
			if err := writeCSV("e3", rows); err != nil {
				return "", err
			}
			out := bench.RenderRatios("E3 — Theorem 2: OA(m) measured ratio vs alpha^alpha", rows)
			return out, bench.RatioCheck(rows)
		}},
		{"e4", func(cfg bench.Config) (string, error) {
			rows, err := bench.E4(cfg)
			if err != nil {
				return "", err
			}
			if err := writeCSV("e4", rows); err != nil {
				return "", err
			}
			out := bench.RenderRatios("E4 — Theorem 3: AVR(m) measured ratio vs (2a)^a/2+1", rows)
			return out, bench.RatioCheck(rows)
		}},
		{"e5", func(cfg bench.Config) (string, error) {
			rows, err := bench.E5(cfg)
			if err != nil {
				return "", err
			}
			if err := writeCSV("e5", rows); err != nil {
				return "", err
			}
			return bench.RenderE5(rows), bench.E5Check(rows)
		}},
		{"e6", func(cfg bench.Config) (string, error) {
			rows, err := bench.E6(cfg)
			if err != nil {
				return "", err
			}
			if err := writeCSV("e6", rows); err != nil {
				return "", err
			}
			return bench.RenderE6(rows), bench.E6Check(rows)
		}},
		{"e7", func(cfg bench.Config) (string, error) {
			rows, err := bench.E7(cfg)
			if err != nil {
				return "", err
			}
			if err := writeCSV("e7", rows); err != nil {
				return "", err
			}
			return bench.RenderE7(rows), bench.E7Check(rows)
		}},
		{"e8", func(cfg bench.Config) (string, error) {
			rows, err := bench.E8(cfg)
			if err != nil {
				return "", err
			}
			if err := writeCSV("e8", rows); err != nil {
				return "", err
			}
			return bench.RenderE8(rows), bench.E8Check(rows)
		}},
		{"e9", func(cfg bench.Config) (string, error) {
			rows, err := bench.E9(cfg, []int{4, 8, 16, 32})
			if err != nil {
				return "", err
			}
			if err := writeCSV("e9", rows); err != nil {
				return "", err
			}
			return bench.RenderE9(rows), bench.E9Check(rows)
		}},
		{"e10", func(cfg bench.Config) (string, error) {
			rows, err := bench.E10(cfg)
			if err != nil {
				return "", err
			}
			if err := writeCSV("e10", rows); err != nil {
				return "", err
			}
			return bench.RenderE10(rows), bench.E10Check(rows)
		}},
		{"e11", func(cfg bench.Config) (string, error) {
			rows, err := bench.E11(cfg, []int{16, 32, 64, 128})
			if err != nil {
				return "", err
			}
			if err := writeCSV("e11", rows); err != nil {
				return "", err
			}
			return bench.RenderE11(rows), bench.E11Check(rows)
		}},
		{"e12", func(cfg bench.Config) (string, error) {
			rows, err := bench.E12(cfg)
			if err != nil {
				return "", err
			}
			if err := writeCSV("e12", rows); err != nil {
				return "", err
			}
			return bench.RenderE12(rows), bench.E12Check(rows)
		}},
		{"e13", func(cfg bench.Config) (string, error) {
			rows, err := bench.E13(cfg)
			if err != nil {
				return "", err
			}
			if err := writeCSV("e13", rows); err != nil {
				return "", err
			}
			return bench.RenderE13(rows), bench.E13Check(rows)
		}},
		{"e14", func(cfg bench.Config) (string, error) {
			rows, err := bench.E14(cfg)
			if err != nil {
				return "", err
			}
			if err := writeCSV("e14", rows); err != nil {
				return "", err
			}
			return bench.RenderE14(rows), bench.E14Check(rows)
		}},
	}

	collect := *metricsOut != ""

	want := strings.ToLower(*exp)
	selected := experiments[:0:0]
	for _, e := range experiments {
		if want == "all" || want == e.name {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "mpss-bench: unknown experiment %q (want all or e1..e14)\n", *exp)
		os.Exit(2)
	}

	// Fan the experiments over the worker pool. Each task gets a private
	// recorder, so no locking is needed in the solver hot path; pool.Map
	// returns results in index order regardless of completion order.
	type outcome struct {
		out  string
		snap obs.Snapshot
	}
	results, err := pool.Map(len(selected), *workers, func(i int) (outcome, error) {
		run := cfg
		if collect {
			run.Recorder = obs.New()
		}
		out, err := selected[i].run(run)
		if err != nil {
			return outcome{}, fmt.Errorf("%s: %w", selected[i].name, err)
		}
		var snap obs.Snapshot
		if collect {
			snap = run.Recorder.Snapshot()
			// Traces from thousands of solver runs would dominate the
			// file; the counters and histograms are the per-experiment
			// payload. Use mpss-opt/mpss-sim -trace for span trees.
			snap.Trace = nil
		}
		return outcome{out: out, snap: snap}, nil
	})
	check(err)

	snaps := make(map[string]obs.Snapshot, len(selected))
	for i, e := range selected {
		fmt.Println(results[i].out)
		if collect {
			snaps[e.name] = results[i].snap
			if len(results[i].snap.Counters) > 0 {
				fmt.Printf("metrics [%s]:\n%s\n", e.name, results[i].snap.CounterTable())
			}
		}
	}

	if collect {
		total := obs.Snapshot{}
		for _, e := range selected {
			total = total.Merge(snaps[e.name])
		}
		if len(total.Counters) > 0 {
			fmt.Printf("metrics [total]:\n%s\n", total.CounterTable())
		}
		payload := struct {
			Experiments map[string]obs.Snapshot `json:"experiments"`
			Total       obs.Snapshot            `json:"total"`
		}{Experiments: snaps, Total: total}
		data, err := json.MarshalIndent(payload, "", "  ")
		check(err)
		check(os.WriteFile(*metricsOut, append(data, '\n'), 0o644))
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		check(err)
		runtime.GC()
		check(pprof.WriteHeapProfile(f))
		check(f.Close())
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpss-bench:", err)
		os.Exit(1)
	}
}
