// Command mpss-bench regenerates the experiment tables of EXPERIMENTS.md:
// one experiment per theorem/lemma of the paper plus the baseline
// comparisons. See DESIGN.md section 4 for the experiment index.
//
// Usage:
//
//	mpss-bench                     # all experiments, default scale
//	mpss-bench -experiment e3      # only the OA(m) competitive sweep
//	mpss-bench -seeds 10 -n 16     # larger sample
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mpss/internal/bench"
	"mpss/internal/export"
)

func main() {
	var (
		exp    = flag.String("experiment", "all", "which experiment to run: all, e1..e14")
		seeds  = flag.Int("seeds", 0, "seeds per cell (0 = default)")
		n      = flag.Int("n", 0, "jobs per instance (0 = default)")
		csvDir = flag.String("csv", "", "also write each experiment's rows as CSV into this directory")
	)
	flag.Parse()

	cfg := bench.Defaults()
	if *seeds > 0 {
		cfg.Seeds = *seeds
	}
	if *n > 0 {
		cfg.N = *n
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			check(err)
		}
	}
	writeCSV := func(name string, rows interface{}) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		check(err)
		defer f.Close()
		check(export.CSV(f, rows))
	}

	want := strings.ToLower(*exp)
	run := func(name string) bool { return want == "all" || want == name }
	ran := false

	if run("e1") {
		ran = true
		rows, err := bench.E1(cfg)
		check(err)
		fmt.Println(bench.RenderE1(rows))
		writeCSV("e1", rows)
		check(bench.E1Check(rows))
	}
	if run("e2") {
		ran = true
		rows, err := bench.E2(cfg, []int{8, 16, 32, 64})
		check(err)
		fmt.Println(bench.RenderE2(rows))
		writeCSV("e2", rows)
	}
	if run("e3") {
		ran = true
		rows, err := bench.E3(cfg)
		check(err)
		fmt.Println(bench.RenderRatios("E3 — Theorem 2: OA(m) measured ratio vs alpha^alpha", rows))
		writeCSV("e3", rows)
		check(bench.RatioCheck(rows))
	}
	if run("e4") {
		ran = true
		rows, err := bench.E4(cfg)
		check(err)
		fmt.Println(bench.RenderRatios("E4 — Theorem 3: AVR(m) measured ratio vs (2a)^a/2+1", rows))
		writeCSV("e4", rows)
		check(bench.RatioCheck(rows))
	}
	if run("e5") {
		ran = true
		rows, err := bench.E5(cfg)
		check(err)
		fmt.Println(bench.RenderE5(rows))
		writeCSV("e5", rows)
		check(bench.E5Check(rows))
	}
	if run("e6") {
		ran = true
		rows, err := bench.E6(cfg)
		check(err)
		fmt.Println(bench.RenderE6(rows))
		writeCSV("e6", rows)
		check(bench.E6Check(rows))
	}
	if run("e7") {
		ran = true
		rows, err := bench.E7(cfg)
		check(err)
		fmt.Println(bench.RenderE7(rows))
		writeCSV("e7", rows)
		check(bench.E7Check(rows))
	}
	if run("e8") {
		ran = true
		rows, err := bench.E8(cfg)
		check(err)
		fmt.Println(bench.RenderE8(rows))
		writeCSV("e8", rows)
		check(bench.E8Check(rows))
	}
	if run("e9") {
		ran = true
		rows, err := bench.E9(cfg, []int{4, 8, 16, 32})
		check(err)
		fmt.Println(bench.RenderE9(rows))
		writeCSV("e9", rows)
		check(bench.E9Check(rows))
	}
	if run("e10") {
		ran = true
		rows, err := bench.E10(cfg)
		check(err)
		fmt.Println(bench.RenderE10(rows))
		writeCSV("e10", rows)
		check(bench.E10Check(rows))
	}
	if run("e11") {
		ran = true
		rows, err := bench.E11(cfg, []int{16, 32, 64, 128})
		check(err)
		fmt.Println(bench.RenderE11(rows))
		writeCSV("e11", rows)
		check(bench.E11Check(rows))
	}
	if run("e12") {
		ran = true
		rows, err := bench.E12(cfg)
		check(err)
		fmt.Println(bench.RenderE12(rows))
		writeCSV("e12", rows)
		check(bench.E12Check(rows))
	}
	if run("e13") {
		ran = true
		rows, err := bench.E13(cfg)
		check(err)
		fmt.Println(bench.RenderE13(rows))
		writeCSV("e13", rows)
		check(bench.E13Check(rows))
	}
	if run("e14") {
		ran = true
		rows, err := bench.E14(cfg)
		check(err)
		fmt.Println(bench.RenderE14(rows))
		writeCSV("e14", rows)
		check(bench.E14Check(rows))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "mpss-bench: unknown experiment %q (want all or e1..e14)\n", *exp)
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpss-bench:", err)
		os.Exit(1)
	}
}
