module mpss

go 1.22
