package mpss

// End-to-end integration tests exercising full pipelines across modules:
// generate -> schedule (offline/online/discrete/non-migratory) -> verify ->
// cross-compare. The heavier sweeps are skipped under -short.

import (
	"math"
	"testing"
)

// Every scheduler in the repository, on every workload family, must emit
// a feasible schedule whose energy brackets correctly against the
// offline optimum.
func TestIntegrationAllSchedulersAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped in -short mode")
	}
	p := MustAlpha(2.5)
	for _, name := range Workloads() {
		for _, m := range []int{1, 3} {
			in, err := GenerateWorkload(name, WorkloadSpec{N: 10, M: m, Seed: 77})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			optRes, err := OptimalSchedule(in)
			if err != nil {
				t.Fatalf("%s m=%d: %v", name, m, err)
			}
			if err := Verify(optRes.Schedule, in); err != nil {
				t.Fatalf("%s m=%d optimal: %v", name, m, err)
			}
			optE := optRes.Schedule.Energy(p)

			check := func(alg string, s *Schedule, bound float64) {
				t.Helper()
				if err := Verify(s, in); err != nil {
					t.Errorf("%s m=%d %s: infeasible: %v", name, m, alg, err)
					return
				}
				ratio := s.Energy(p) / optE
				if ratio < 1-1e-6 {
					t.Errorf("%s m=%d %s: ratio %v below 1", name, m, alg, ratio)
				}
				if bound > 0 && ratio > bound+1e-6 {
					t.Errorf("%s m=%d %s: ratio %v above bound %v", name, m, alg, ratio, bound)
				}
			}

			oa, err := OA(in)
			if err != nil {
				t.Fatalf("%s m=%d OA: %v", name, m, err)
			}
			check("OA", oa.Schedule, OABound(2.5))

			avr, err := AVR(in)
			if err != nil {
				t.Fatalf("%s m=%d AVR: %v", name, m, err)
			}
			check("AVR", avr.Schedule, AVRBound(2.5))

			for polName, a := range map[string]Assignment{
				"nonmig-rr": RoundRobinAssignment(),
				"nonmig-lw": LeastWorkAssignment(),
			} {
				s, err := NonMigratory(in, a)
				if err != nil {
					t.Fatalf("%s m=%d %s: %v", name, m, polName, err)
				}
				check(polName, s, 0)
			}

			if m == 1 {
				bk, err := BKP(in.Jobs, 16)
				if err != nil {
					t.Fatalf("%s BKP: %v", name, err)
				}
				check("BKP", bk, BKPBound(2.5))
			}

			menu, err := UniformSpeedMenu(optRes.Phases[0].Speed*1.4, 10)
			if err != nil {
				t.Fatal(err)
			}
			disc, err := DiscreteSchedule(in, p, menu)
			if err != nil {
				t.Fatalf("%s m=%d discrete: %v", name, m, err)
			}
			check("discrete", disc.Schedule, 0)
		}
	}
}

// The exact-arithmetic solver and the float solver must agree across the
// whole workload catalogue.
func TestIntegrationExactAgreesEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("exact sweep skipped in -short mode")
	}
	p := MustAlpha(3)
	for _, name := range Workloads() {
		in, err := GenerateWorkload(name, WorkloadSpec{N: 8, M: 2, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		fast, err := OptimalSchedule(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		exact, err := OptimalScheduleExact(in)
		if err != nil {
			t.Fatalf("%s exact: %v", name, err)
		}
		fe, ee := fast.Schedule.Energy(p), exact.Schedule.Energy(p)
		if math.Abs(fe-ee) > 1e-6*(1+ee) {
			t.Errorf("%s: float %v vs exact %v", name, fe, ee)
		}
	}
}

// A periodic task set scheduled optimally, capped, discretized and
// simulated online — the full production pipeline on one instance.
func TestIntegrationPeriodicPipeline(t *testing.T) {
	in, err := ExpandPeriodic(2, []PeriodicTask{
		{Period: 8, WCET: 2, Phase: 0},
		{Period: 12, WCET: 3, Phase: 1},
		{Period: 6, WCET: 1, Phase: 2},
	}, 48)
	if err != nil {
		t.Fatal(err)
	}
	p := MustAlpha(3)

	optRes, err := OptimalSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(optRes.Schedule, in); err != nil {
		t.Fatal(err)
	}

	cap, err := MinFeasibleCap(in, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cap-optRes.Phases[0].Speed) > 1e-4*(1+cap) {
		t.Errorf("cap %v vs top speed %v", cap, optRes.Phases[0].Speed)
	}

	menu, err := UniformSpeedMenu(cap*1.2, 8)
	if err != nil {
		t.Fatal(err)
	}
	disc, err := DiscreteSchedule(in, p, menu)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(disc.Schedule, in); err != nil {
		t.Fatal(err)
	}

	oa, err := OA(in)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewPotentialTracker(in, oa, optRes.Schedule, 3)
	if err != nil {
		t.Fatal(err)
	}
	start, end := in.Horizon()
	r := tr.Drift(start, end, p)
	if r.LHS > 1e-5*(1+27*r.EOPT) {
		t.Errorf("potential drift positive on periodic pipeline: %+v", r)
	}
}

// Large-instance stress: the solver must stay feasible and verified well
// beyond the harness sizes (this is where accumulated floating-point
// slack would first show up).
func TestIntegrationLargeInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("large instance skipped in -short mode")
	}
	in, err := GenerateWorkload("uniform", WorkloadSpec{N: 200, M: 6, Seed: 42, Horizon: 300})
	if err != nil {
		t.Fatal(err)
	}
	res, err := OptimalSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(res.Schedule, in); err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) > in.N() {
		t.Errorf("%d phases for %d jobs", len(res.Phases), in.N())
	}
	// The online algorithms must also survive this size.
	avr, err := AVR(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(avr.Schedule, in); err != nil {
		t.Fatal(err)
	}
}
