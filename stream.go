package mpss

import (
	"fmt"
	"io"
	"sync"

	"mpss/internal/job"
	"mpss/internal/opt"
	"mpss/internal/workload"
)

// TraceWriter streams a job trace in the mpss-trace-v1 JSONL format: a
// header line carrying the processor count, then one job per line in
// nondecreasing release order. See internal/workload/stream.go for the
// format specification.
type TraceWriter = workload.StreamWriter

// TraceReader reads an mpss-trace-v1 job trace one job at a time.
type TraceReader = workload.StreamReader

// NewTraceWriter writes the trace header for m processors and returns a
// writer for the job lines; call Flush when done.
func NewTraceWriter(w io.Writer, m int) (*TraceWriter, error) {
	return workload.NewStreamWriter(w, m)
}

// NewTraceReader parses the trace header and returns a reader positioned
// at the first job.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	return workload.NewStreamReader(r)
}

// IsTraceStream reports whether data (a prefix suffices) begins with an
// mpss-trace-v1 header; tools use it to tell a streamed trace from the
// in-memory instance JSON.
func IsTraceStream(data []byte) bool { return workload.IsStream(data) }

// GenerateTrace streams exactly spec.N cluster-trace-shaped jobs
// (diurnal arrival waves, Pareto work volumes, mixed job classes) into
// w in release order, materializing only one wave (~64 jobs) at a time.
// The same process materialized is the "diurnal" workload generator.
func GenerateTrace(w *TraceWriter, spec WorkloadSpec) error {
	return workload.WriteTrace(w, spec)
}

// TraceSolveSummary is the outcome of a streamed trace solve. The full
// schedule of a million-job trace is itself millions of segments, so the
// streaming path reports this fixed-size summary instead of retaining
// the segments.
type TraceSolveSummary struct {
	Jobs             int     // jobs read from the trace
	M                int     // processors, from the trace header
	Components       int     // independent components cut and solved
	MaxComponentJobs int     // size of the largest component
	Phases           int     // total phases across all components
	Rounds           int     // total flow-checked rounds
	Energy           float64 // total energy under the given power function
}

// SolveTraceStream reads an mpss-trace-v1 trace and computes its optimal
// schedule's phase counts and total energy under p, cutting independent
// components at zero-active boundaries as the reader crosses them and
// dispatching each component to a worker as soon as it is complete — a
// separable trace is never materialized in full, so memory is bounded by
// the largest component (times the worker count), not the trace length.
// Energy is summed in component order, so the result is deterministic at
// any WithParallelism setting.
//
// With WithDecomposition(false) the entire trace is materialized and
// solved monolithically instead — the A/B baseline the benchmarks
// compare against; the reported Energy is identical (the decomposition
// differential suite proves the schedules bit-equal, and the summary
// sums per-component energies in the same component order either way).
func SolveTraceStream(r io.Reader, p PowerFunction, opts ...SolveOption) (*TraceSolveSummary, error) {
	cfg := buildSolveConfig(opts)
	decompose := true
	if cfg.decomposeSet {
		decompose = cfg.decompose
	}
	sr, err := workload.NewStreamReader(r)
	if err != nil {
		return nil, err
	}
	if !decompose {
		return solveTraceMonolithic(sr, p, &cfg)
	}

	workers := cfg.par
	if workers < 1 {
		workers = 1
	}
	sum := &TraceSolveSummary{M: sr.M()}

	type comp struct {
		idx  int
		jobs []job.Job
	}
	type compStats struct {
		phases, rounds int
		energy         float64
	}
	compCh := make(chan comp, workers)
	errCh := make(chan error, workers)
	var mu sync.Mutex
	var stats []compStats // indexed by component; summaries only, O(components) memory
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range compCh {
				res, err := opt.Schedule(&job.Instance{M: sum.M, Jobs: c.jobs},
					opt.WithRecorder(cfg.rec), opt.WithContext(cfg.ctx),
					opt.WithContraction(!cfg.noContract))
				if err != nil {
					select {
					case errCh <- fmt.Errorf("mpss: trace component %d (%d jobs): %w", c.idx, len(c.jobs), err):
					default:
					}
					return
				}
				cs := compStats{phases: res.Stats.Phases, rounds: res.Stats.Rounds, energy: res.Schedule.Energy(p)}
				mu.Lock()
				for len(stats) <= c.idx {
					stats = append(stats, compStats{})
				}
				stats[c.idx] = cs
				mu.Unlock()
			}
		}()
	}

	// Cut components as the reader advances: jobs arrive sorted by
	// release, so the moment a release reaches the maximum deadline seen,
	// no open window crosses that point and the buffered jobs form a
	// finished component.
	dispatch := func(c comp) error {
		select {
		case compCh <- c:
			return nil
		case err := <-errCh:
			return err
		}
	}
	var (
		buf     []job.Job
		horizon float64
		readErr error
	)
	for {
		j, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			readErr = err
			break
		}
		if len(buf) > 0 && j.Release >= horizon {
			if err := dispatch(comp{idx: sum.Components, jobs: buf}); err != nil {
				readErr = err
				break
			}
			sum.Components++
			buf = nil
		}
		buf = append(buf, j)
		sum.Jobs++
		if len(buf) > sum.MaxComponentJobs {
			sum.MaxComponentJobs = len(buf)
		}
		if j.Deadline > horizon {
			horizon = j.Deadline
		}
	}
	if readErr == nil && len(buf) > 0 {
		if err := dispatch(comp{idx: sum.Components, jobs: buf}); err != nil {
			readErr = err
		} else {
			sum.Components++
		}
	}
	close(compCh)
	wg.Wait()
	if readErr == nil {
		select {
		case readErr = <-errCh:
		default:
		}
	}
	if readErr != nil {
		return nil, readErr
	}
	if sum.Jobs == 0 {
		return nil, fmt.Errorf("mpss: empty trace: %w", ErrInvalidInstance)
	}

	cfg.rec.Add("opt.components", int64(sum.Components))
	cfg.rec.Add("opt.decompose_cuts", int64(sum.Components-1))
	cfg.rec.Add("opt.component_jobs_max", int64(sum.MaxComponentJobs))
	for _, cs := range stats {
		sum.Phases += cs.phases
		sum.Rounds += cs.rounds
		sum.Energy += cs.energy
	}
	return sum, nil
}

// solveTraceMonolithic materializes the whole trace and solves it as one
// instance — the decompose-off baseline.
func solveTraceMonolithic(sr *workload.StreamReader, p PowerFunction, cfg *solveConfig) (*TraceSolveSummary, error) {
	in := &job.Instance{M: sr.M()}
	for {
		j, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		in.Jobs = append(in.Jobs, j)
	}
	res, err := opt.Schedule(in,
		opt.WithRecorder(cfg.rec), opt.WithParallelism(cfg.par), opt.WithContext(cfg.ctx),
		opt.WithContraction(!cfg.noContract))
	if err != nil {
		return nil, err
	}
	// Mirror the streamed path's energy summation: per component, in
	// component order — the segment-order float sum over the whole
	// schedule could differ in the last ulp.
	comps := componentCuts(in.Jobs)
	sum := &TraceSolveSummary{
		Jobs: in.N(), M: in.M,
		Components: len(comps),
		Phases:     res.Stats.Phases, Rounds: res.Stats.Rounds,
	}
	for _, c := range comps {
		if c.n > sum.MaxComponentJobs {
			sum.MaxComponentJobs = c.n
		}
		sum.Energy += res.Schedule.Clip(c.start, c.end).Energy(p)
	}
	return sum, nil
}

// componentCuts returns the time range and job count of each separable
// component of release-sorted jobs (the same cuts the streaming reader
// makes).
func componentCuts(jobs []job.Job) []struct {
	start, end float64
	n          int
} {
	var out []struct {
		start, end float64
		n          int
	}
	var cur struct {
		start, end float64
		n          int
	}
	for _, j := range jobs {
		if cur.n > 0 && j.Release >= cur.end {
			out = append(out, cur)
			cur.n = 0
		}
		if cur.n == 0 {
			cur.start = j.Release
			cur.end = j.Deadline
		}
		cur.n++
		if j.Deadline > cur.end {
			cur.end = j.Deadline
		}
	}
	if cur.n > 0 {
		out = append(out, cur)
	}
	return out
}
