package mpss

// One testing.B benchmark per experiment of EXPERIMENTS.md. Each runs the
// corresponding harness cell once per iteration and validates the claim,
// so `go test -bench=.` regenerates and re-checks every "table/figure" of
// the reproduction. cmd/mpss-bench prints the full tables.

import (
	"testing"

	"mpss/internal/bench"
)

func benchConfig() bench.Config { return bench.Config{Seeds: 2, N: 8} }

func BenchmarkE1Optimality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.E1(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := bench.E1Check(rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2RuntimeOptVsLP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E2(benchConfig(), []int{8, 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3OACompetitive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.E3(bench.Config{Seeds: 1, N: 8})
		if err != nil {
			b.Fatal(err)
		}
		if err := bench.RatioCheck(rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4AVRCompetitive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.E4(bench.Config{Seeds: 1, N: 8})
		if err != nil {
			b.Fatal(err)
		}
		if err := bench.RatioCheck(rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5Structure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.E5(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := bench.E5Check(rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6OAMonotone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.E6(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := bench.E6Check(rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7MigrationGain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.E7(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := bench.E7Check(rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8PowerInequality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.E8(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := bench.E8Check(rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9SingleProc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.E9(benchConfig(), []int{4, 8, 16})
		if err != nil {
			b.Fatal(err)
		}
		if err := bench.E9Check(rows); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks of the two core solvers at a realistic size.

func BenchmarkOptimalSchedule32Jobs4Procs(b *testing.B) {
	in, err := GenerateWorkload("uniform", WorkloadSpec{N: 32, M: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalSchedule(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOA16Jobs4Procs(b *testing.B) {
	in, err := GenerateWorkload("bursty", WorkloadSpec{N: 16, M: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OA(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAVR64Jobs8Procs(b *testing.B) {
	in, err := GenerateWorkload("uniform", WorkloadSpec{N: 64, M: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AVR(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10AVRDecomposition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.E10(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := bench.E10Check(rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11FlowAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.E11(benchConfig(), []int{16, 32})
		if err != nil {
			b.Fatal(err)
		}
		if err := bench.E11Check(rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12SingleProcOnline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.E12(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := bench.E12Check(rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE13RaceVsStretch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.E13(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := bench.E13Check(rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE14GeneralConvexProbe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.E14(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := bench.E14Check(rows); err != nil {
			b.Fatal(err)
		}
	}
}

// Observability overhead: the same solve with the nil no-op recorder
// (the default) and with metrics collection enabled. The off/on delta
// bounds what instrumentation costs uninstrumented callers.

func benchRecorderInstance(b *testing.B) *Instance {
	b.Helper()
	in, err := GenerateWorkload("uniform", WorkloadSpec{N: 32, M: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

func BenchmarkOptimalScheduleRecorderOff(b *testing.B) {
	in := benchRecorderInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalSchedule(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalScheduleRecorderOn(b *testing.B) {
	in := benchRecorderInstance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalSchedule(in, WithRecorder(NewRecorder())); err != nil {
			b.Fatal(err)
		}
	}
}

// Scaling series for the offline optimum (polynomial-time claim of
// Theorem 1): one benchmark per instance size.

func benchOptimalAt(b *testing.B, n, m int) {
	b.Helper()
	in, err := GenerateWorkload("uniform", WorkloadSpec{N: n, M: m, Seed: 1, Horizon: 200})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalSchedule(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalScheduleN16(b *testing.B)  { benchOptimalAt(b, 16, 4) }
func BenchmarkOptimalScheduleN64(b *testing.B)  { benchOptimalAt(b, 64, 4) }
func BenchmarkOptimalScheduleN128(b *testing.B) { benchOptimalAt(b, 128, 4) }
func BenchmarkOptimalScheduleN256(b *testing.B) { benchOptimalAt(b, 256, 8) }
