package mpss

import (
	"math"
	"testing"
)

func quickInstance(t *testing.T) *Instance {
	t.Helper()
	in, err := NewInstance(2, []Job{
		{ID: 1, Release: 0, Deadline: 4, Work: 8},
		{ID: 2, Release: 1, Deadline: 5, Work: 2},
		{ID: 3, Release: 0, Deadline: 2, Work: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestPublicOfflinePipeline(t *testing.T) {
	in := quickInstance(t)
	res, err := OptimalSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(res.Schedule, in); err != nil {
		t.Fatal(err)
	}
	p := MustAlpha(3)
	e := res.Schedule.Energy(p)
	if e <= 0 || math.IsNaN(e) {
		t.Errorf("energy = %v", e)
	}
	exact, err := OptimalScheduleExact(in)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(exact.Schedule.Energy(p) - e); diff > 1e-6*(1+e) {
		t.Errorf("exact and float energies differ by %v", diff)
	}
}

func TestPublicOnlinePipeline(t *testing.T) {
	in := quickInstance(t)
	p := MustAlpha(2)
	optRes, err := OptimalSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	optE := optRes.Schedule.Energy(p)

	oa, err := OA(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(oa.Schedule, in); err != nil {
		t.Fatal(err)
	}
	if ratio := oa.Schedule.Energy(p) / optE; ratio > OABound(2)+1e-9 || ratio < 1-1e-9 {
		t.Errorf("OA ratio %v outside [1, %v]", ratio, OABound(2))
	}

	avr, err := AVR(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(avr.Schedule, in); err != nil {
		t.Fatal(err)
	}
	if ratio := avr.Schedule.Energy(p) / optE; ratio > AVRBound(2)+1e-9 || ratio < 1-1e-9 {
		t.Errorf("AVR ratio %v outside [1, %v]", ratio, AVRBound(2))
	}
}

func TestPublicBaselines(t *testing.T) {
	in := quickInstance(t)
	for name, a := range map[string]Assignment{
		"random":     RandomAssignment(1),
		"roundrobin": RoundRobinAssignment(),
		"leastwork":  LeastWorkAssignment(),
	} {
		s, err := NonMigratory(in, a)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := Verify(s, in); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	s, err := YDS(quickInstance(t).Jobs)
	if err != nil {
		t.Fatal(err)
	}
	one, err := NewInstance(1, quickInstance(t).Jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(s, one); err != nil {
		t.Errorf("YDS: %v", err)
	}
}

func TestPublicWorkloads(t *testing.T) {
	names := Workloads()
	if len(names) < 4 {
		t.Fatalf("only %d generators", len(names))
	}
	for _, n := range names {
		in, err := GenerateWorkload(n, WorkloadSpec{N: 6, M: 2, Seed: 9})
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if in.N() != 6 {
			t.Errorf("%s: n = %d", n, in.N())
		}
	}
	if _, err := GenerateWorkload("no-such", WorkloadSpec{N: 1, M: 1}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestPublicBounds(t *testing.T) {
	if got := OABound(2); math.Abs(got-4) > 1e-12 {
		t.Errorf("OABound(2) = %v", got)
	}
	if got := AVRBound(2); math.Abs(got-9) > 1e-12 {
		t.Errorf("AVRBound(2) = %v", got)
	}
	if _, err := NewAlpha(0.5); err == nil {
		t.Error("NewAlpha(0.5) accepted")
	}
}
