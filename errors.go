package mpss

import (
	"mpss/internal/mpsserr"
)

// The package classifies every failure of a solver entry point into one
// of four sentinel errors, testable with errors.Is. The concrete error
// always wraps the sentinel together with human-readable detail (job ID,
// phase, round, offending value).
var (
	// ErrInvalidInstance marks input that violates the model before any
	// solving starts: NaN/Inf or non-positive volumes, deadlines at or
	// before releases, m < 1, empty or nil instances, duplicate job IDs.
	ErrInvalidInstance = mpsserr.ErrInvalidInstance

	// ErrInfeasible marks well-formed input that admits no feasible
	// schedule under the requested constraints (e.g. a speed cap too low
	// for some job's window, or an online run overloading m processors).
	ErrInfeasible = mpsserr.ErrInfeasible

	// ErrNumeric marks a floating-point precision failure inside the
	// float solver engine. The solver retries such failures internally
	// (cold restart, then exact rational arithmetic); callers only see
	// ErrNumeric when every rung of that ladder failed.
	ErrNumeric = mpsserr.ErrNumeric

	// ErrInternal marks a solver bug: an invariant the algorithm
	// guarantees was observed to fail, or a panic escaped an internal
	// layer and was contained at the solver boundary. Worth reporting.
	ErrInternal = mpsserr.ErrInternal

	// ErrCanceled marks a solve abandoned because the context given via
	// WithContext was canceled or its deadline expired mid-solve. The
	// solver unwinds at the next phase/round or probe-wave boundary; a
	// Solver session that had a call canceled stays valid for further
	// calls. CLIs map it to exit code 1.
	ErrCanceled = mpsserr.ErrCanceled
)

// ValidateInstance checks an instance against the strict input contract:
// non-nil and non-empty, m >= 1, every job with finite positive work, a
// finite window with Release < Deadline, and no duplicate job IDs.
// Instances built with NewInstance always pass; instances assembled by
// hand (struct literals, decoded JSON) should be run through it before
// solving. All failures wrap ErrInvalidInstance.
func ValidateInstance(in *Instance) error {
	return in.Validate()
}
