// Package mpss is an energy-aware multi-processor scheduling library
// implementing "On multi-processor speed scaling with migration" by
// Albers, Antoniadis and Greiner (SPAA 2011 / JCSS 2015).
//
// # Model
//
// A sequence of jobs — each with a release time, a deadline and a
// processing volume — must be scheduled on m parallel variable-speed
// processors. Jobs may be preempted and migrated between processors, but
// a job never runs on two processors at once. A processor running at
// speed s draws power P(s), a convex non-decreasing function with
// P(0) = 0 (classically P(s) = s^alpha with alpha > 1); the objective is
// to finish every job inside its window with minimum total energy.
//
// # Algorithms
//
//   - OptimalSchedule: the paper's combinatorial offline optimum
//     (Theorem 1), built from repeated maximum-flow computations. The
//     schedule it returns is optimal simultaneously for every convex
//     non-decreasing power function.
//   - OA: the online Optimal Available algorithm for m processors
//     (Theorem 2, alpha^alpha-competitive).
//   - AVR: the online Average Rate algorithm for m processors
//     (Theorem 3, (2 alpha)^alpha/2 + 1-competitive).
//   - YDS: the classic single-processor optimum of Yao, Demers and
//     Shenker, used as a baseline and as the per-processor optimum of the
//     non-migratory baselines.
//   - NonMigratory: assignment + per-processor YDS baselines in the style
//     of the non-migratory multiprocessor literature.
//
// # Quick start
//
//	jobs := []mpss.Job{
//		{ID: 1, Release: 0, Deadline: 4, Work: 8},
//		{ID: 2, Release: 1, Deadline: 5, Work: 2},
//	}
//	in, _ := mpss.NewInstance(2, jobs)
//	res, _ := mpss.OptimalSchedule(in)
//	fmt.Println(res.Schedule.Energy(mpss.MustAlpha(3)))
//
// See the examples directory for runnable scenarios and cmd/ for CLI
// tools (instance generation, offline solving, online simulation, and the
// experiment harness reproducing the paper's claims).
package mpss

import (
	"context"
	"fmt"
	"io"

	"mpss/internal/bkp"
	"mpss/internal/discrete"
	"mpss/internal/job"
	"mpss/internal/obs"
	"mpss/internal/online"
	"mpss/internal/opt"
	"mpss/internal/potential"
	"mpss/internal/power"
	"mpss/internal/schedule"
	"mpss/internal/sleep"
	"mpss/internal/viz"
	"mpss/internal/workload"
	"mpss/internal/yds"
)

// Job is one unit of work: released at Release, due by Deadline, carrying
// Work units of processing volume.
type Job = job.Job

// Instance is a validated set of jobs to schedule on M processors.
type Instance = job.Instance

// Interval is one event interval of the partition of the time horizon
// along release times and deadlines.
type Interval = job.Interval

// Schedule is a multi-processor schedule of constant-speed segments.
type Schedule = schedule.Schedule

// Segment pins one job to one processor at one speed over a time window.
type Segment = schedule.Segment

// PowerFunction is a convex non-decreasing power function with P(0) = 0.
type PowerFunction = power.Function

// Alpha is the canonical power function P(s) = s^alpha.
type Alpha = power.Alpha

// OptimalResult is the outcome of the offline optimum: the schedule plus
// its phase structure (job sets with their uniform speeds).
type OptimalResult = opt.Result

// OptimalPhase is one speed level of an optimal schedule.
type OptimalPhase = opt.Phase

// OAResult is the executed OA(m) schedule plus its replanning trace.
type OAResult = online.OAResult

// AVRResult is the AVR(m) schedule plus its per-interval level structure.
type AVRResult = online.AVRResult

// Assignment maps each job (by index) to a processor, for the
// non-migratory baselines.
type Assignment = online.Assignment

// WorkloadSpec parameterizes the bundled workload generators.
type WorkloadSpec = workload.Spec

// Recorder collects solver metrics: named atomic counters, duration
// histograms and a hierarchical span trace of the solver's phase
// structure. Construct with NewRecorder and attach to any solver entry
// point via WithRecorder; a nil *Recorder is a no-op, so instrumented
// call sites need no conditionals. See internal/obs.
type Recorder = obs.Recorder

// NewRecorder returns an empty metrics recorder.
func NewRecorder() *Recorder { return obs.New() }

// Metrics is a point-in-time export of a Recorder: counters, histogram
// summaries and the span trace. Obtain one with Recorder.Snapshot; write
// it as JSON with Recorder.WriteJSON or render the phase tree with
// Metrics.TraceTree.
type Metrics = obs.Snapshot

// SolveOption configures the solver entry points — the package-level
// one-shot functions (OptimalSchedule, OptimalScheduleExact, OA, AVR,
// FeasibleAtSpeed, MinFeasibleCap) and the Solver session methods.
// Options given to NewSolver become session defaults; options given to
// an individual call are applied on top.
type SolveOption func(*solveConfig)

type solveConfig struct {
	rec        *obs.Recorder
	par        int
	capLo      float64
	capHi      float64
	capBracket bool
	noContract bool
	noApprox   bool
	decompose  bool
	// decomposeSet distinguishes an explicit WithDecomposition(false)
	// from the unset default: one-shot solves default off, the streaming
	// trace solve defaults on.
	decomposeSet bool
	ctx          context.Context
}

// WithRecorder directs a solver run to record its metrics and phase
// trace into r.
func WithRecorder(r *Recorder) SolveOption {
	return func(c *solveConfig) { c.rec = r }
}

// WithParallelism runs the solver's flow computations with up to n
// concurrent workers (n <= 1, the default, keeps everything sequential
// and bit-reproducible). OptimalSchedule dispatches large cold max-flow
// solves to a concurrent push-relabel engine; MinFeasibleCap and
// FeasibleAtSpeedBatch evaluate up to n feasibility probes
// speculatively in parallel. The computed speeds, energy and
// feasibility answers are independent of n; only the (non-unique)
// work decomposition inside a phase may differ from a sequential run.
func WithParallelism(n int) SolveOption {
	return func(c *solveConfig) { c.par = n }
}

// WithBracket supplies MinFeasibleCap with a known search bracket
// [lo, hi] — hi a feasible cap, lo an infeasible one (0 allowed) —
// skipping the optimal-schedule solve that otherwise derives the upper
// bound. Other entry points ignore it.
func WithBracket(lo, hi float64) SolveOption {
	return func(c *solveConfig) { c.capLo, c.capHi, c.capBracket = lo, hi, true }
}

// WithContraction toggles interval contraction (default on): before
// each phase is solved, maximal runs of consecutive atomic intervals
// with identical active job sets and processor budgets are merged into
// single super-intervals, shrinking the flow network without changing
// any computed speed, phase or schedule — results are bit-identical
// either way. Turning it off is an escape hatch for debugging and for
// A/B measurement (the -contract=false flag of the CLIs maps here).
func WithContraction(on bool) SolveOption {
	return func(c *solveConfig) { c.noContract = !on }
}

// WithDecomposition toggles windowed decomposition (default off for
// Solve/OptimalSchedule, on for SolveTraceStream): the solver finds the
// time points no job window crosses, solves the resulting independent
// components separately — concurrently, when WithParallelism(n > 1) is
// given — and merges the results. The merged schedule, phases, speeds
// and energy are bit-identical to the monolithic solve's, but the cost
// grows with the largest component instead of the whole instance, which
// on separable traces (see the "diurnal" workload) is the difference
// between minutes and seconds at datacenter scale. Instances with no
// cut points pay one O(n log n) sweep and solve exactly as before.
func WithDecomposition(on bool) SolveOption {
	return func(c *solveConfig) { c.decompose = on; c.decomposeSet = true }
}

// WithApproxFirst toggles the two-tier cap search (default on): while
// the MinFeasibleCap bracket is still wide, feasibility probes run on a
// contracted, pre-packed network with an early-exit max-flow; the final
// narrowing always uses full-precision probes on the raw network, so
// the returned cap is bit-identical either way. Entry points other
// than MinFeasibleCap ignore it. Disabling contraction also disables
// the approximate tier.
func WithApproxFirst(on bool) SolveOption {
	return func(c *solveConfig) { c.noApprox = !on }
}

func buildSolveConfig(opts []SolveOption) solveConfig {
	var cfg solveConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// NewInstance validates m and the jobs and returns a schedulable instance.
func NewInstance(m int, jobs []Job) (*Instance, error) {
	return job.NewInstance(m, jobs)
}

// NewAlpha returns the power function P(s) = s^alpha; alpha must exceed 1.
func NewAlpha(alpha float64) (Alpha, error) { return power.NewAlpha(alpha) }

// MustAlpha is NewAlpha that panics on invalid input.
func MustAlpha(alpha float64) Alpha { return power.MustAlpha(alpha) }

// OptimalSchedule computes an energy-optimal migratory schedule for the
// instance using the paper's combinatorial flow-based algorithm. The
// result is feasible and optimal for every convex non-decreasing power
// function with P(0) = 0.
//
// Failures are classified by the package's sentinel errors (see
// ErrInvalidInstance and friends); the solver never panics on caller
// input.
func OptimalSchedule(in *Instance, opts ...SolveOption) (*OptimalResult, error) {
	s, release := oneShot(opts)
	defer release()
	return s.Solve(in)
}

// OptimalScheduleExact is OptimalSchedule with all phase decisions carried
// out in exact rational arithmetic. Slower, but immune to floating-point
// misclassification.
func OptimalScheduleExact(in *Instance, opts ...SolveOption) (*OptimalResult, error) {
	s, release := oneShot(opts)
	defer release()
	return s.SolveExact(in)
}

// YDS computes the classic optimal single-processor schedule.
func YDS(jobs []Job) (*Schedule, error) {
	r, err := yds.Schedule(jobs)
	if err != nil {
		return nil, err
	}
	return r.Schedule, nil
}

// OA runs the online Optimal Available algorithm on the instance,
// replanning with the offline optimum at every arrival. Theorem 2 of the
// paper: the result consumes at most alpha^alpha times the optimal energy
// under P(s) = s^alpha.
func OA(in *Instance, opts ...SolveOption) (*OAResult, error) {
	s, release := oneShot(opts)
	defer release()
	return s.OA(in)
}

// AVR runs the online Average Rate algorithm on the instance. Theorem 3
// of the paper: the result consumes at most (2 alpha)^alpha/2 + 1 times
// the optimal energy under P(s) = s^alpha.
func AVR(in *Instance, opts ...SolveOption) (*AVRResult, error) {
	s, release := oneShot(opts)
	defer release()
	return s.AVR(in)
}

// NonMigratory schedules without migration: jobs are assigned to
// processors with the given policy and each processor runs its
// single-processor YDS optimum.
func NonMigratory(in *Instance, assign Assignment) (*Schedule, error) {
	return online.NonMigratory(in, assign)
}

// RandomAssignment assigns jobs to processors uniformly at random.
func RandomAssignment(seed int64) Assignment { return online.RandomAssignment(seed) }

// RoundRobinAssignment deals jobs to processors in release order.
func RoundRobinAssignment() Assignment { return online.RoundRobinAssignment() }

// LeastWorkAssignment sends each job to the least-loaded processor.
func LeastWorkAssignment() Assignment { return online.LeastWorkAssignment() }

// Verify checks a schedule against the feasibility invariants of the
// model (windows, volumes, no processor or job overlap).
func Verify(s *Schedule, in *Instance) error {
	if err := ValidateInstance(in); err != nil {
		return err
	}
	if s == nil {
		return fmt.Errorf("mpss: nil schedule: %w", ErrInvalidInstance)
	}
	return s.Verify(in)
}

// OABound returns alpha^alpha, the proven competitive ratio of OA(m).
func OABound(alpha float64) float64 { return power.MustAlpha(alpha).OABound() }

// AVRBound returns (2 alpha)^alpha/2 + 1, the proven competitive ratio of
// AVR(m).
func AVRBound(alpha float64) float64 { return power.MustAlpha(alpha).AVRBound() }

// GenerateWorkload builds a reproducible random instance with the named
// generator; see Workloads for the catalogue.
func GenerateWorkload(name string, spec WorkloadSpec) (*Instance, error) {
	g, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	return g.Make(spec)
}

// Workloads lists the names of the bundled workload generators.
func Workloads() []string {
	gens := workload.All()
	names := make([]string, len(gens))
	for i, g := range gens {
		names[i] = g.Name
	}
	return names
}

// PowerTerm is one monomial of a Polynomial power function.
type PowerTerm = power.Term

// NewPolynomial builds a convex polynomial power function
// sum C_i * s^E_i (C_i >= 0, E_i >= 1).
func NewPolynomial(terms ...PowerTerm) (PowerFunction, error) {
	return power.NewPolynomial(terms...)
}

// SamplePiecewiseAlpha builds a piecewise-linear convex upper
// approximation of s^alpha with k breakpoints on (0, maxSpeed].
func SamplePiecewiseAlpha(alpha, maxSpeed float64, k int) (PowerFunction, error) {
	return power.SampleAlpha(alpha, maxSpeed, k)
}

// DiscreteResult is the outcome of scheduling with a finite speed menu.
type DiscreteResult = discrete.Result

// DiscreteSchedule computes an optimal schedule restricted to a finite
// menu of processor speeds (the discrete-DVFS setting of the related
// work the paper cites), by two-level mixing of the continuous optimum.
func DiscreteSchedule(in *Instance, p PowerFunction, levels []float64) (*DiscreteResult, error) {
	return discrete.Schedule(in, p, levels)
}

// UniformSpeedMenu builds k evenly spaced speed levels on (0, max].
func UniformSpeedMenu(max float64, k int) ([]float64, error) {
	return discrete.UniformMenu(max, k)
}

// FeasibleAtSpeed reports whether the instance fits under a maximum
// processor speed cap (the speed-bounded setting), via one max-flow
// test. Options: WithRecorder counts the probe and the flow-solver
// operations, WithContext makes it cancelable; WithParallelism only
// affects the Batch form.
func FeasibleAtSpeed(in *Instance, cap float64, opts ...SolveOption) (bool, error) {
	s, release := oneShot(opts)
	defer release()
	return s.FeasibleAtSpeed(in, cap)
}

// FeasibleAtSpeedBatch answers FeasibleAtSpeed for many candidate caps
// at once, evaluating probes concurrently on pooled flow graphs when
// WithParallelism(n > 1) is given. The result is index-aligned with
// caps.
func FeasibleAtSpeedBatch(in *Instance, caps []float64, opts ...SolveOption) ([]bool, error) {
	s, release := oneShot(opts)
	defer release()
	return s.FeasibleAtSpeedBatch(in, caps)
}

// MinFeasibleCap returns the smallest processor speed cap at which the
// instance remains feasible, to relative tolerance rel. With
// WithParallelism(k > 1) each search wave probes k caps speculatively
// in parallel; WithBracket skips the initial bracketing solve.
func MinFeasibleCap(in *Instance, rel float64, opts ...SolveOption) (float64, error) {
	s, release := oneShot(opts)
	defer release()
	return s.MinFeasibleCap(in, rel)
}

// PotentialTracker evaluates the potential function of the paper's OA(m)
// analysis along an executed run; see internal/potential.
type PotentialTracker = potential.Tracker

// NewPotentialTracker wires an instance, an executed OA run on it, and
// the offline-optimal schedule, for auditing the Theorem 2 analysis.
func NewPotentialTracker(in *Instance, oa *OAResult, opt *Schedule, alpha float64) (*PotentialTracker, error) {
	return potential.NewTracker(in, oa, opt, alpha)
}

// PeriodicTask is one periodic real-time task for ExpandPeriodic.
type PeriodicTask = workload.Task

// ExpandPeriodic unrolls a periodic task set over [0, horizon) into a
// job instance on m processors.
func ExpandPeriodic(m int, tasks []PeriodicTask, horizon float64) (*Instance, error) {
	return workload.ExpandPeriodic(m, tasks, horizon)
}

// InstanceFromTrace parses an external JSON job trace into a validated
// instance (the format emitted by cmd/mpss-gen).
func InstanceFromTrace(data []byte) (*Instance, error) {
	return workload.FromTrace(data)
}

// BKP runs the single-processor Bansal-Kimbrel-Pruhs online algorithm
// (reference [5] of the paper; its multi-processor extension is the open
// problem raised in the paper's conclusion). slicesPerInterval controls
// the simulation granularity (0 = default).
func BKP(jobs []Job, slicesPerInterval int) (*Schedule, error) {
	return bkp.Schedule(jobs, bkp.Options{SlicesPerInterval: slicesPerInterval})
}

// BKPBound returns 2 (alpha/(alpha-1))^alpha e^alpha, the proven
// competitive ratio of the BKP algorithm on one processor.
func BKPBound(alpha float64) float64 { return bkp.Bound(alpha) }

// ScheduleAtCap builds a feasible fixed-frequency schedule: every
// processor runs at exactly cap or idles ("race to idle"). It fails when
// the instance is infeasible at the cap.
func ScheduleAtCap(in *Instance, cap float64) (*Schedule, error) {
	return opt.ScheduleAtCap(in, cap)
}

// SleepModel describes static (leakage) power and the cost of waking
// from the sleep state — the combined speed-scaling/power-down model the
// paper's conclusion points to as future work.
type SleepModel = sleep.Model

// EnergyBreakdown is the energy account of a schedule under a SleepModel.
type EnergyBreakdown = sleep.Breakdown

// EvaluateWithSleep prices a schedule under dynamic power p plus the
// sleep model over [start, end): awake processors draw P(s) + IdlePower,
// and every idle gap takes the cheaper of idling and sleeping.
func EvaluateWithSleep(s *Schedule, p PowerFunction, m SleepModel, start, end float64) (EnergyBreakdown, error) {
	return sleep.Evaluate(s, p, m, start, end)
}

// Planner is the incremental, push-style form of OA(m): arrivals are fed
// one batch at a time, the planner executes its current optimal plan
// between them and replans on every batch — the interface an actual
// runtime would drive. It reproduces OA exactly.
type Planner = online.Planner

// NewPlanner returns an empty incremental OA(m) planner over m
// processors.
func NewPlanner(m int) (*Planner, error) { return online.NewPlanner(m) }

// Canonicalize rewrites a schedule into the paper's canonical form
// (Lemma 6): within every event interval, processor 0 carries the highest
// speed, processor 1 the next, and so on. Feasibility and energy are
// unchanged. The interval partition must be the one the schedule was
// built on (OptimalResult.Intervals).
func Canonicalize(s *Schedule, ivs []Interval) (*Schedule, error) {
	return opt.Canonicalize(s, ivs)
}

// ProfilePoint is one step of a schedule's piecewise-constant aggregate
// speed/power time series (see Schedule.PowerProfile).
type ProfilePoint = schedule.ProfilePoint

// ProfileEnergy integrates a PowerProfile series back into total energy.
func ProfileEnergy(profile []ProfilePoint) float64 {
	return schedule.ProfileEnergy(profile)
}

// SVGOptions controls RenderSVG geometry.
type SVGOptions = viz.Options

// RenderSVG writes the schedule as a standalone SVG document: one lane
// per processor, bar height proportional to speed, tooltips with job,
// window and speed.
func RenderSVG(w io.Writer, s *Schedule, o SVGOptions) error {
	return viz.SVG(w, s, o)
}
