# Developer entry points. `make verify` is the tier-1 recipe CI and the
# ROADMAP reference: build + vet + full tests + race over the packages
# with real concurrency (the observability substrate and flow solvers).

GO ?= go

.PHONY: all build test vet race verify bench clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs/... ./internal/flow/...

verify: build vet test race

bench:
	$(GO) test -bench=. -benchtime=1x -run xxx .

clean:
	$(GO) clean ./...
