# Developer entry points. `make verify` is the tier-1 recipe CI and the
# ROADMAP reference: build + vet + full tests + race over the packages
# with real concurrency (the observability substrate and flow solvers).

GO ?= go

.PHONY: all build test vet race verify bench bench-smoke cli-smoke serve-smoke session-smoke loadgen-smoke cluster-smoke fuzz-smoke contract-smoke trace-smoke bench-trace apidoc clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/obs/... ./internal/flow/... ./internal/server/...

# cli-smoke exercises every CLI end to end and fails when any tool exits
# outside the documented {0,1,2} convention or prints a panic trace.
cli-smoke:
	sh scripts/cli_smoke.sh

# serve-smoke boots the real mpss-served binary, drives the JSON API
# (including the cache and the error mapping) and checks SIGTERM drains
# to a clean exit 0.
serve-smoke:
	sh scripts/serve_smoke.sh

# session-smoke drives the streaming-session protocol against the real
# binary: create, remove/add/cap deltas (each checked against a one-shot
# solve), long-poll, delete, TTL eviction, graceful drain.
session-smoke:
	sh scripts/session_smoke.sh

# loadgen-smoke runs mpss-loadgen against a live daemon for a short
# open-loop burst and asserts the SLO report (non-zero throughput, zero
# 5xx) plus a valid Prometheus scrape under load.
loadgen-smoke:
	sh scripts/loadgen_smoke.sh

# cluster-smoke boots the real mpss-front in exec mode (it spawns its
# own mpss-served children), runs loadgen through it, SIGKILLs a
# replica mid-run, and asserts zero client-visible errors plus an
# autoscaler scale-up and scale-back-down in /v1/cluster/status.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# apidoc regenerates docs/API.md from the mpss/api package sources.
# The file is committed; run this after any wire-contract change.
apidoc:
	$(GO) run ./cmd/mpss-apidoc -o docs/API.md

# fuzz-smoke runs the solver-boundary fuzz harness briefly: enough to
# catch a reintroduced panic path, cheap enough for every CI run.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzSolvePipeline -fuzztime 20s .

# trace-smoke streams a 50k-job diurnal trace through the decomposed
# solve end to end: component counters asserted against the summary, a
# 1-vs-4-worker differential, and the mpss-gen trace | mpss-opt pipe.
trace-smoke:
	sh scripts/trace_smoke.sh

# contract-smoke runs the contracted-vs-raw differential solves under
# the race detector: the contraction pass shares per-phase state with
# the warm engine and the parallel flow dispatch, so one racy write
# there would silently corrupt the active-set runs. -short keeps it to
# the small sizes.
contract-smoke:
	$(GO) test -race -short -run 'TestContractedMatchesRaw|TestTwoTierCap' ./internal/opt/

verify: build vet test race cli-smoke serve-smoke session-smoke loadgen-smoke cluster-smoke trace-smoke

# bench runs the solver benchmark family (warm incremental engine vs the
# cold per-round-rebuild baseline) and archives the numbers — ns/op,
# allocs/op and the solver-internal counters reported via b.ReportMetric
# — as BENCH_opt.json. The raw benchstat-compatible text lands in
# bench_opt.txt for `benchstat old.txt bench_opt.txt` comparisons.
bench:
	$(GO) test -bench=. -benchtime=1x -run xxx .
	$(GO) test -run xxx -bench 'BenchmarkOptSchedule|BenchmarkFeasibleAtSpeed|BenchmarkMinFeasibleCap' \
		-benchtime 3x -count 1 ./internal/opt/ | tee bench_opt.txt
	$(GO) run ./cmd/benchjson -o BENCH_opt.json < bench_opt.txt >/dev/null
	$(GO) test -run xxx -bench 'BenchmarkHistogram|BenchmarkLabeledCounter|BenchmarkWritePrometheus' \
		-benchtime 100x -count 1 ./internal/obs/ | tee bench_obs.txt
	$(GO) run ./cmd/benchjson -o BENCH_obs.json < bench_obs.txt >/dev/null
	sh scripts/bench_trace.sh

# bench-trace archives streamed-trace throughput (jobs/sec, peak RSS at
# 100k and 1M jobs, decompose on vs bounded-off baseline) on its own;
# BENCH_TRACE_OFF_TIMEOUT caps the monolithic baseline (see the script).
bench-trace:
	sh scripts/bench_trace.sh

# bench-smoke is the fast CI variant: one iteration of the small sizes.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkOptSchedule(Cold)?64Jobs' \
		-benchtime 1x -count 1 ./internal/opt/

clean:
	$(GO) clean ./...
